//===- tests/lint_test.cpp - Binary lint gate tests -----------------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lint half of the tier-1 gate: every SPEC92-shaped workload must
/// lint clean in both compile modes (a lint finding on real toolchain
/// output is either a toolchain bug or a lint false positive — both block
/// the gate), and the seeded corpus modules must each report exactly their
/// defect with the right code, procedure, and instruction provenance.
///
//===----------------------------------------------------------------------===//

#include "isa/Inst.h"
#include "megagen/MegaGen.h"
#include "om/Analysis.h"
#include "om/OmImpl.h"
#include "support/ThreadPool.h"

#include "TestUtil.h"

using namespace om64;
using namespace om64::om;
using namespace om64::om::analysis;
using namespace om64::test;
using namespace om64::isa;

namespace {

/// Lints the given objects; returns the findings count and fills
/// \p Rendered with the diagnostics.
unsigned lintObjects(const std::vector<obj::ObjectFile> &Objs,
                     std::string &Rendered) {
  ThreadPool Pool(0);
  OmOptions Opts;
  Result<SymbolicProgram> SP = liftProgram(Objs, Opts, Pool);
  EXPECT_TRUE(bool(SP)) << SP.message();
  if (!SP)
    return ~0u;
  ProgramAnalysis PA = analyzeProgram(*SP, Pool);
  DiagnosticEngine Diags;
  unsigned N = runLint(*SP, PA, Diags);
  Rendered = Diags.render();
  return N;
}

class WorkloadLintTest : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadLintTest, LintsClean) {
  const std::string &Name = GetParam();
  Result<wl::BuiltWorkload> W = wl::buildWorkload(Name);
  ASSERT_TRUE(bool(W)) << W.message();
  for (wl::CompileMode Mode : {wl::CompileMode::Each, wl::CompileMode::All}) {
    std::string Rendered;
    unsigned N = lintObjects(W->linkSet(Mode), Rendered);
    EXPECT_EQ(N, 0u) << Name << " ("
                     << (Mode == wl::CompileMode::Each ? "each" : "all")
                     << "): " << Rendered;
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadLintTest,
                         ::testing::ValuesIn(wl::workloadNames()),
                         [](const auto &Info) { return Info.param; });

/// The corpus cases double as provenance goldens: the diagnostic must name
/// the defective procedure, not merely the code.
TEST(LintCorpusTest, FindingsCarryProvenance) {
  for (const LintCase &Case : lintCorpus()) {
    if (Case.Code.empty())
      continue;
    std::string Rendered;
    unsigned N = lintObjects({Case.Obj}, Rendered);
    ASSERT_EQ(N, 1u) << Case.Name << ":\n" << Rendered;
    EXPECT_NE(Rendered.find(Case.Code), std::string::npos) << Rendered;
    // Every corpus diagnostic is anchored in a lintcase procedure buffer.
    EXPECT_NE(Rendered.find("lint:lintcase."), std::string::npos)
        << Case.Name << " diagnostic lacks a procedure buffer:\n"
        << Rendered;
  }
}

/// The clean corpus module also survives a whole optimize() run — corpus
/// objects are real linkable modules, not just lint fixtures.
TEST(LintCorpusTest, CleanModuleLinks) {
  for (const LintCase &Case : lintCorpus()) {
    if (!Case.Code.empty())
      continue;
    OmOptions Opts;
    Opts.Level = OmLevel::Full;
    Result<OmResult> R = optimize({Case.Obj}, Opts);
    EXPECT_TRUE(bool(R)) << R.message();
  }
}

/// Every seeded corpus defect carries a non-empty witness path ending at
/// the defect site, and --explain rendering shows the numbered trace.
TEST(LintCorpusTest, FindingsCarryWitnessPaths) {
  for (const LintCase &Case : lintCorpus()) {
    if (Case.Code.empty())
      continue;
    ThreadPool Pool(1);
    OmOptions Opts;
    std::vector<obj::ObjectFile> Objs = {Case.Obj};
    Result<SymbolicProgram> SP = liftProgram(Objs, Opts, Pool);
    ASSERT_TRUE(bool(SP)) << Case.Name << ": " << SP.message();
    ProgramAnalysis PA = analyzeProgram(*SP, Pool);
    std::vector<LintFinding> Fs = lintProgram(*SP, PA, Pool);
    ASSERT_EQ(Fs.size(), 1u) << Case.Name;
    EXPECT_FALSE(Fs[0].Witness.empty()) << Case.Name;
    // The trace ends at the defect instruction.
    EXPECT_EQ(Fs[0].Witness.back().InstIdx, Fs[0].InstIdx) << Case.Name;
    std::string Explained = renderLintText(Fs, /*Explain=*/true);
    EXPECT_NE(Explained.find("  #0 "), std::string::npos)
        << Case.Name << ":\n"
        << Explained;
    // Plain rendering is a prefix of the explained one: the witness only
    // appends.
    std::string Plain = renderLintText(Fs, /*Explain=*/false);
    EXPECT_EQ(Explained.compare(0, Plain.size(), Plain), 0);
  }
}

/// Assembles one module with several defective procedures, for ordering
/// tests: findings must come out sorted by procedure order, then
/// instruction, regardless of worker count.
obj::ObjectFile makeMultiDefectObject() {
  struct P {
    std::string Name;
    std::vector<Inst> Insts;
  };
  // main: clean. bad_uninit: L001. bad_saved: L007. bad_frame: L006 at +4
  // and L007 at +16 (s1 clobbered) — two findings in one procedure.
  std::vector<P> Procs = {
      {"main",
       {makeMem(Opcode::Lda, V0, 0, Zero), makeJump(Opcode::Ret, Zero, RA)}},
      {"bad_uninit",
       {makeOpLit(Opcode::Addq, T0, 1, V0),
        makeJump(Opcode::Ret, Zero, RA)}},
      {"bad_saved",
       {makeMem(Opcode::Lda, S0, 1, Zero),
        makeJump(Opcode::Ret, Zero, RA)}},
      {"bad_frame",
       {makeMem(Opcode::Lda, SP, -16, SP),
        makeMem(Opcode::Stq, Zero, -8, SP),
        makeMem(Opcode::Lda, SP, 16, SP),
        makeMem(Opcode::Lda, S1, 2, Zero),
        makeJump(Opcode::Ret, Zero, RA)}},
  };
  obj::ObjectFile O;
  O.ModuleName = "multidefect";
  uint64_t Off = 0;
  for (const P &Proc : Procs) {
    obj::Symbol S;
    S.Name = "multidefect." + Proc.Name;
    S.Section = obj::SectionKind::Text;
    S.Offset = Off;
    S.Size = Proc.Insts.size() * 4;
    S.IsProcedure = true;
    S.IsExported = true;
    S.IsDefined = true;
    obj::ProcDesc D;
    D.SymbolIndex = static_cast<uint32_t>(O.Symbols.size());
    D.TextOffset = Off;
    D.TextSize = S.Size;
    O.Symbols.push_back(std::move(S));
    O.Procs.push_back(D);
    for (const Inst &I : Proc.Insts) {
      uint32_t W = encode(I);
      for (unsigned B = 0; B < 4; ++B)
        O.Text.push_back(static_cast<uint8_t>(W >> (8 * B)));
    }
    Off += Proc.Insts.size() * 4;
  }
  return O;
}

/// Diagnostics must be byte-identical at every worker count — the
/// parallel lint reduces per-procedure results in procedure order.
TEST(LintOrderingTest, ByteIdenticalAcrossPoolSizes) {
  OmOptions Opts;
  std::vector<obj::ObjectFile> Objs = {makeMultiDefectObject()};
  ThreadPool Serial(1);
  Result<SymbolicProgram> SP = liftProgram(Objs, Opts, Serial);
  ASSERT_TRUE(bool(SP)) << SP.message();
  ProgramAnalysis PA = analyzeProgram(*SP, Serial);
  std::string Base = renderLintText(lintProgram(*SP, PA, Serial), true);
  // Several findings across several procedures — the ordering is
  // observable.
  ASSERT_NE(Base.find("L001"), std::string::npos) << Base;
  ASSERT_NE(Base.find("L006"), std::string::npos) << Base;
  ASSERT_NE(Base.find("L007"), std::string::npos) << Base;
  ASSERT_LT(Base.find("bad_uninit"), Base.find("bad_saved")) << Base;
  ASSERT_LT(Base.find("bad_saved"), Base.find("bad_frame")) << Base;
  for (unsigned Workers : {2u, 4u}) {
    ThreadPool Pool(Workers);
    EXPECT_EQ(renderLintText(lintProgram(*SP, PA, Pool), true), Base)
        << "lint output differs at " << Workers << " workers";
  }
}

/// All 19 workloads: -j1 and -j4 lint output must match byte for byte
/// (both are empty when clean — the assertion still pins the contract).
TEST(LintOrderingTest, WorkloadsByteIdenticalAcrossPoolSizes) {
  for (const std::string &Name : wl::workloadNames()) {
    Result<wl::BuiltWorkload> W = wl::buildWorkload(Name);
    ASSERT_TRUE(bool(W)) << W.message();
    std::vector<obj::ObjectFile> Objs = W->linkSet(wl::CompileMode::Each);
    OmOptions Opts;
    ThreadPool Serial(1);
    Result<SymbolicProgram> SP = liftProgram(Objs, Opts, Serial);
    ASSERT_TRUE(bool(SP)) << Name << ": " << SP.message();
    ProgramAnalysis PA = analyzeProgram(*SP, Serial);
    std::string Base = renderLintText(lintProgram(*SP, PA, Serial), true);
    ThreadPool Pool(4);
    EXPECT_EQ(renderLintText(lintProgram(*SP, PA, Pool), true), Base)
        << Name;
  }
}

/// Tier-1 gate: every megagen call-graph shape lints clean — the
/// generator's prologues, GP discipline, and frame accesses must satisfy
/// L001..L010 like real toolchain output does.
TEST(MegagenLintTest, AllShapesLintClean) {
  for (megagen::CallShape Shape :
       {megagen::CallShape::DeepChains, megagen::CallShape::WideFanout,
        megagen::CallShape::HotLoops, megagen::CallShape::Mixed}) {
    megagen::MegaSpec Spec;
    Spec.Shape = Shape;
    Spec.Modules = 4;
    Spec.ProcsPerModule = 6;
    Spec.TargetInstructions = 20000;
    megagen::MegaProgram MP = megagen::generate(Spec);
    std::string Rendered;
    unsigned N = lintObjects(MP.Objects, Rendered);
    EXPECT_EQ(N, 0u) << megagen::shapeName(Shape) << ":\n" << Rendered;
  }
}

} // namespace

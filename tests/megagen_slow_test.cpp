//===- tests/megagen_slow_test.cpp - Mega shape sweep (slow suite) --------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The full shape sweep: every call-graph shape the generator can emit is
/// linked with the whole pipeline on (OM-full, rescheduling, dataflow
/// analysis) at -j1 and -j4, demanding byte-identical images, identical
/// statistics, and unchanged program behaviour versus the unoptimized
/// link. Tier-1 covers one shape; this covers the rest at a larger size.
///
//===----------------------------------------------------------------------===//

#include "megagen/MegaGen.h"
#include "om/Om.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace om64;
using namespace om64::megagen;
using namespace om64::obj;
using namespace om64::om;

namespace {

OmResult runOm(const std::vector<ObjectFile> &Objs, const OmOptions &Opts) {
  Result<OmResult> R = om::optimize(Objs, Opts);
  EXPECT_TRUE(bool(R)) << (R ? "" : R.message());
  return R ? R.take() : OmResult{};
}

int64_t runExitCode(const Image &Img) {
  Result<sim::SimResult> R = sim::run(Img);
  EXPECT_TRUE(bool(R)) << (R ? "" : R.message());
  return R ? R->ExitCode : -1;
}

TEST(MegaGenSlowTest, AllShapesLinkDeterministicallyAndRun) {
  const CallShape Shapes[] = {CallShape::DeepChains, CallShape::WideFanout,
                              CallShape::HotLoops, CallShape::Mixed};
  for (CallShape Shape : Shapes) {
    MegaSpec Spec;
    Spec.Seed = 23;
    Spec.Shape = Shape;
    Spec.Modules = 24;
    Spec.ProcsPerModule = 10;
    Spec.TargetInstructions = 60000;
    MegaProgram MP = generate(Spec);
    for (const ObjectFile &O : MP.Objects)
      ASSERT_FALSE(bool(O.verify()))
          << shapeName(Shape) << ": " << O.verify().message();

    OmOptions Opts;
    Opts.Level = OmLevel::Full;
    Opts.Reschedule = true;
    Opts.AlignLoopTargets = true;
    Opts.Analysis = true;
    Opts.MaxGatEntriesPerGroup = 32; // several groups without forcing 1:1
    Opts.SerialFallbackInsts = 0;

    Opts.Jobs = 1;
    OmResult Serial = runOm(MP.Objects, Opts);
    Opts.Jobs = 4;
    OmResult Par = runOm(MP.Objects, Opts);

    EXPECT_TRUE(Serial.Image.serialize() == Par.Image.serialize())
        << shapeName(Shape) << ": -j4 image differs from the -j1 image";
    EXPECT_EQ(Serial.Stats.AddressLoadsConverted,
              Par.Stats.AddressLoadsConverted)
        << shapeName(Shape);
    EXPECT_EQ(Serial.Stats.AddressLoadsNullified,
              Par.Stats.AddressLoadsNullified)
        << shapeName(Shape);
    EXPECT_EQ(Serial.Stats.InstructionsDeleted, Par.Stats.InstructionsDeleted)
        << shapeName(Shape);
    EXPECT_EQ(Serial.Stats.JsrConvertedToBsr, Par.Stats.JsrConvertedToBsr)
        << shapeName(Shape);
    EXPECT_EQ(Serial.Stats.AnalysisGpPairsDeleted,
              Par.Stats.AnalysisGpPairsDeleted)
        << shapeName(Shape);
    EXPECT_EQ(Serial.Stats.SchedMemDepsFreed, Par.Stats.SchedMemDepsFreed)
        << shapeName(Shape);

    OmOptions NoneOpts;
    NoneOpts.Level = OmLevel::None;
    OmResult None = runOm(MP.Objects, NoneOpts);
    EXPECT_EQ(runExitCode(Serial.Image), runExitCode(None.Image))
        << shapeName(Shape) << ": the optimized image changed the answer";
  }
}

} // namespace

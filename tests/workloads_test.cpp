//===- tests/workloads_test.cpp - Workload suite regression tests ---------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the exact output of every SPEC92-shaped workload (the whole
/// pipeline is deterministic, so any change here means compiler, linker,
/// simulator, or workload semantics moved), and checks the per-program
/// profile properties the suite was designed to have (indirect calls in
/// li/sc, library-call density in spice, large basic blocks in fpppp,
/// beyond-window data in hydro2d/swm256/tomcatv).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "lang/Interp.h"

#include <gtest/gtest.h>

#include <map>

using namespace om64;
using namespace om64::test;

namespace {

const std::map<std::string, std::string> &goldenOutputs() {
  static const std::map<std::string, std::string> Golden = {
      {"alvinn", "250172\n503559\n"},
      {"compress", "e=21957\np=8171\n"},
      {"doduc", "343299\n4163\n"},
      {"ear", "905517159232\n"},
      {"eqntott", "u=768\n42284297\n"},
      {"espresso", "s=87\nc=415779\n"},
      {"fpppp", "9710\n"},
      {"hydro2d", "96631897\n-781812\n"},
      {"li", "r=253\ns=1\n"},
      {"mdljdp2", "10473\n110251\n"},
      {"mdljsp2", "58033\n"},
      {"nasa7", "195960\n103221\n-1810\n10371\n10188\n-75734\n-59436\n"},
      {"ora", "h=760\nm=440\n1541821\n"},
      {"sc", "n=225\n85715\n"},
      {"spice", "w=0\n28794\n"},
      {"su2cor", "5896805\n"},
      {"swm256", "63837547\n484277\n"},
      {"tomcatv", "22998\n208638\n"},
      {"wave5", "q=533920\n-636357\n"},
  };
  return Golden;
}

class GoldenOutputTest : public ::testing::TestWithParam<std::string> {};

TEST_P(GoldenOutputTest, BaselineOutputIsPinned) {
  const std::string &Name = GetParam();
  Result<wl::BuiltWorkload> W = wl::buildWorkload(Name);
  ASSERT_TRUE(bool(W)) << W.message();
  Result<obj::Image> Img = wl::linkBaseline(*W, wl::CompileMode::Each);
  ASSERT_TRUE(bool(Img)) << Img.message();
  Result<sim::SimResult> R = sim::run(*Img);
  ASSERT_TRUE(bool(R)) << R.message();
  EXPECT_EQ(R->Output, goldenOutputs().at(Name));
  EXPECT_EQ(R->ExitCode, 0);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, GoldenOutputTest,
                         ::testing::ValuesIn(wl::workloadNames()),
                         [](const ::testing::TestParamInfo<std::string> &I) {
                           return I.param;
                         });

TEST(WorkloadProfileTest, InterpreterAgreesOnEveryWorkload) {
  // The reference interpreter is an independent implementation of MLang
  // semantics; agreement over the whole suite is a strong cross-check of
  // compiler, linker, and simulator at once.
  for (const std::string &Name : wl::workloadNames()) {
    Result<wl::ParsedWorkload> PW = wl::parseWorkload(Name);
    ASSERT_TRUE(bool(PW)) << PW.message();
    lang::InterpResult R = lang::interpret(PW->AST, 400000000ull);
    ASSERT_TRUE(R.Ok) << Name << ": " << R.Error;
    EXPECT_EQ(R.Output, goldenOutputs().at(Name)) << Name;
    EXPECT_EQ(R.ExitCode, 0) << Name;
  }
}

TEST(WorkloadProfileTest, LiAndScKeepIndirectCallPvLoads) {
  for (const char *Name : {"li", "sc"}) {
    Result<wl::BuiltWorkload> W = wl::buildWorkload(Name);
    ASSERT_TRUE(bool(W)) << W.message();
    om::OmOptions Opts;
    Result<om::OmResult> R =
        wl::linkWithOm(*W, wl::CompileMode::Each, Opts);
    ASSERT_TRUE(bool(R)) << R.message();
    EXPECT_GT(R->Stats.CallsNeedingPvLoad, 0u)
        << Name << " dispatches through procedure variables";
  }
}

TEST(WorkloadProfileTest, SpiceIsLibraryCallHeavy) {
  // The paper: "in the spice benchmark ... statically half the calls are
  // from one library routine to another". Our spice routes nearly all its
  // arithmetic through fixed/rt; check that a clear majority of its call
  // sites live in library code.
  Result<wl::BuiltWorkload> W = wl::buildWorkload("spice");
  ASSERT_TRUE(bool(W)) << W.message();
  unsigned UserCalls = 0, LibCalls = 0;
  auto countJsrs = [](const obj::ObjectFile &O) {
    unsigned N = 0;
    for (const obj::Reloc &R : O.Relocs)
      N += R.Kind == obj::RelocKind::LituseJsr;
    return N;
  };
  for (const obj::ObjectFile &O : W->UserEach)
    UserCalls += countJsrs(O);
  for (const obj::ObjectFile &O : W->Library)
    LibCalls += countJsrs(O);
  EXPECT_GT(LibCalls, UserCalls / 2)
      << "library-to-library chains should be a large share";
}

TEST(WorkloadProfileTest, FppppHasLargeBasicBlocks) {
  // fpppp's huge straight-line blocks are what make link-time scheduling
  // superlinear in Figure 7; verify the block shape exists.
  Result<wl::BuiltWorkload> W = wl::buildWorkload("fpppp");
  ASSERT_TRUE(bool(W)) << W.message();
  const obj::ObjectFile &O = W->UserEach[0];
  // Longest run of non-terminator instructions.
  unsigned Longest = 0, Cur = 0;
  for (size_t Off = 0; Off + 4 <= O.Text.size(); Off += 4) {
    uint32_t Word = (uint32_t)O.Text[Off] |
                    ((uint32_t)O.Text[Off + 1] << 8) |
                    ((uint32_t)O.Text[Off + 2] << 16) |
                    ((uint32_t)O.Text[Off + 3] << 24);
    std::optional<isa::Inst> I = isa::decode(Word);
    ASSERT_TRUE(I.has_value());
    if (isa::isTerminator(I->Op)) {
      Longest = std::max(Longest, Cur);
      Cur = 0;
    } else {
      ++Cur;
    }
  }
  Longest = std::max(Longest, Cur);
  EXPECT_GE(Longest, 100u) << "fpppp should carry very large basic blocks";
}

TEST(WorkloadProfileTest, BigDataProgramsConvertAddressLoads) {
  for (const char *Name : {"hydro2d", "swm256", "tomcatv"}) {
    Result<wl::BuiltWorkload> W = wl::buildWorkload(Name);
    ASSERT_TRUE(bool(W)) << W.message();
    om::OmOptions Opts;
    Result<om::OmResult> R =
        wl::linkWithOm(*W, wl::CompileMode::Each, Opts);
    ASSERT_TRUE(bool(R)) << R.message();
    EXPECT_GT(R->Stats.AddressLoadsConverted, 0u)
        << Name << " has data beyond the 64 KiB GP window";
  }
}

TEST(WorkloadProfileTest, RuntimeLibraryIsSharedAcrossWorkloads) {
  // The pre-compiled library objects must be identical no matter which
  // workload they are built alongside (they are separate compilations).
  Result<wl::BuiltWorkload> A = wl::buildWorkload("ora");
  Result<wl::BuiltWorkload> B = wl::buildWorkload("li");
  ASSERT_TRUE(bool(A) && bool(B));
  ASSERT_EQ(A->Library.size(), B->Library.size());
  for (size_t Idx = 0; Idx < A->Library.size(); ++Idx)
    EXPECT_EQ(A->Library[Idx].serialize(), B->Library[Idx].serialize())
        << A->Library[Idx].ModuleName;
}

} // namespace

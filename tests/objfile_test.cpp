//===- tests/objfile_test.cpp - Object format unit tests ------------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#include "objfile/Image.h"
#include "TestUtil.h"
#include "objfile/ObjectFile.h"

#include "isa/Inst.h"

#include <gtest/gtest.h>

using namespace om64;
using namespace om64::obj;

namespace {

ObjectFile sampleObject() {
  ObjectFile O;
  O.ModuleName = "demo";
  for (int I = 0; I < 4; ++I) {
    uint32_t W = isa::encode(isa::Inst::nop());
    for (unsigned B = 0; B < 4; ++B)
      O.Text.push_back(static_cast<uint8_t>(W >> (8 * B)));
  }
  O.Data = {1, 2, 3, 4, 5, 6, 7, 8};
  O.BssSize = 64;

  Symbol Proc;
  Proc.Name = "demo.main";
  Proc.Section = SectionKind::Text;
  Proc.Size = 16;
  Proc.IsProcedure = true;
  Proc.IsExported = true;
  Proc.IsDefined = true;
  O.Symbols.push_back(Proc);

  Symbol Var;
  Var.Name = "demo.counter";
  Var.Section = SectionKind::Bss;
  Var.Offset = 0;
  Var.Size = 8;
  Var.IsDefined = true;
  O.Symbols.push_back(Var);

  Symbol Extern;
  Extern.Name = "io.print_int";
  O.Symbols.push_back(Extern);

  O.Gat.push_back({1, 0});
  O.Gat.push_back({2, 0});

  Reloc Lit;
  Lit.Kind = RelocKind::Literal;
  Lit.Offset = 0;
  Lit.GatIndex = 0;
  Lit.LiteralId = 7;
  O.Relocs.push_back(Lit);

  Reloc Use;
  Use.Kind = RelocKind::LituseBase;
  Use.Offset = 4;
  Use.LiteralId = 7;
  O.Relocs.push_back(Use);

  Reloc Gp;
  Gp.Kind = RelocKind::GpDisp;
  Gp.Offset = 8;
  Gp.PairOffset = 4;
  Gp.AnchorOffset = 0;
  Gp.GpKind = 1;
  O.Relocs.push_back(Gp);

  ProcDesc D;
  D.SymbolIndex = 0;
  D.TextOffset = 0;
  D.TextSize = 16;
  D.UsesGp = true;
  O.Procs.push_back(D);
  return O;
}

TEST(ObjectFileTest, SerializeDeserializeRoundTrip) {
  ObjectFile O = sampleObject();
  std::vector<uint8_t> Bytes = O.serialize();
  Result<ObjectFile> Back = ObjectFile::deserialize(Bytes);
  ASSERT_TRUE(bool(Back)) << Back.message();
  EXPECT_EQ(Back->ModuleName, "demo");
  EXPECT_EQ(Back->Text, O.Text);
  EXPECT_EQ(Back->Data, O.Data);
  EXPECT_EQ(Back->BssSize, 64u);
  ASSERT_EQ(Back->Symbols.size(), 3u);
  EXPECT_EQ(Back->Symbols[0].Name, "demo.main");
  EXPECT_TRUE(Back->Symbols[0].IsProcedure);
  EXPECT_FALSE(Back->Symbols[2].IsDefined);
  ASSERT_EQ(Back->Gat.size(), 2u);
  EXPECT_EQ(Back->Gat[1], (GatEntry{2, 0}));
  ASSERT_EQ(Back->Relocs.size(), 3u);
  EXPECT_EQ(Back->Relocs[2].Kind, RelocKind::GpDisp);
  EXPECT_EQ(Back->Relocs[2].PairOffset, 4u);
  EXPECT_EQ(Back->Relocs[2].GpKind, 1);
  ASSERT_EQ(Back->Procs.size(), 1u);
  EXPECT_TRUE(Back->Procs[0].UsesGp);
}

TEST(ObjectFileTest, RejectsBadMagicAndTruncation) {
  ObjectFile O = sampleObject();
  std::vector<uint8_t> Bytes = O.serialize();
  std::vector<uint8_t> Bad = Bytes;
  Bad[0] ^= 0xFF;
  EXPECT_FALSE(bool(ObjectFile::deserialize(Bad)));

  std::vector<uint8_t> Short(Bytes.begin(), Bytes.begin() + 20);
  EXPECT_FALSE(bool(ObjectFile::deserialize(Short)));
}

TEST(ObjectFileTest, VerifyCatchesInconsistencies) {
  {
    ObjectFile O = sampleObject();
    O.Text.push_back(0); // not a multiple of 4
    EXPECT_TRUE(bool(O.verify()));
  }
  {
    ObjectFile O = sampleObject();
    O.Gat[0].SymbolIndex = 99;
    EXPECT_TRUE(bool(O.verify()));
  }
  {
    ObjectFile O = sampleObject();
    O.Relocs[1].LiteralId = 1234; // no matching literal
    EXPECT_TRUE(bool(O.verify()));
  }
  {
    ObjectFile O = sampleObject();
    O.Procs[0].TextSize = 1000; // extends past text
    EXPECT_TRUE(bool(O.verify()));
  }
  {
    ObjectFile O = sampleObject();
    O.Relocs[0].Offset = 4096; // outside .text
    EXPECT_TRUE(bool(O.verify()));
  }
  EXPECT_FALSE(bool(sampleObject().verify()));
}

TEST(ObjectFileTest, FindSymbol) {
  ObjectFile O = sampleObject();
  EXPECT_EQ(O.findSymbol("demo.counter"), 1u);
  EXPECT_EQ(O.findSymbol("nope"), ~0u);
}

TEST(ImageTest, FetchAndSymbols) {
  obj::Image Img;
  uint32_t W = isa::encode(isa::makeMem(isa::Opcode::Ldq, isa::T0, 8,
                                        isa::GP));
  for (unsigned B = 0; B < 4; ++B)
    Img.Text.push_back(static_cast<uint8_t>(W >> (8 * B)));
  EXPECT_EQ(Img.fetch(Img.TextBase), W);
  EXPECT_EQ(Img.textWords().size(), 1u);
  EXPECT_EQ(Img.textWords()[0], W);

  Img.Symbols.push_back({"t.main", Img.TextBase, 4, true});
  EXPECT_EQ(Img.symbolAt(Img.TextBase), "t.main");
  EXPECT_EQ(Img.symbolAt(Img.TextBase + 4), "");
}

TEST(ImageTest, SerializeDeserializeRoundTrip) {
  obj::Image Img;
  Img.Text = {1, 2, 3, 4};
  Img.Data = {9, 8};
  Img.BssSize = 128;
  Img.Entry = Img.TextBase;
  Img.InitialGp = Img.DataBase + 32768;
  Img.GatBase = Img.DataBase;
  Img.GatSize = 40;
  Img.Symbols.push_back({"a.b", 42, 8, false});
  Img.Procs.push_back({"a.main", Img.TextBase, 4, Img.InitialGp, 0});

  Result<obj::Image> Back = obj::Image::deserialize(Img.serialize());
  ASSERT_TRUE(bool(Back)) << Back.message();
  EXPECT_EQ(Back->Text, Img.Text);
  EXPECT_EQ(Back->Data, Img.Data);
  EXPECT_EQ(Back->BssSize, 128u);
  EXPECT_EQ(Back->GatSize, 40u);
  ASSERT_EQ(Back->Procs.size(), 1u);
  EXPECT_EQ(Back->Procs[0].GpValue, Img.InitialGp);
  EXPECT_EQ(Back->dataSegmentSize(), 130u);
}

TEST(ImageTest, VerifyAcceptsRealExecutablesAndCatchesDamage) {
  // A real linked workload passes; corrupting a GAT slot or the entry
  // point is caught.
  Result<wl::BuiltWorkload> W = wl::buildWorkload("ora");
  ASSERT_TRUE(bool(W)) << W.message();
  Result<obj::Image> Img = wl::linkBaseline(*W, wl::CompileMode::Each);
  ASSERT_TRUE(bool(Img)) << Img.message();
  EXPECT_FALSE(bool(Img->verify())) << Img->verify().message();

  {
    obj::Image Bad = *Img;
    Bad.Entry = Bad.TextBase + 2; // misaligned
    EXPECT_TRUE(bool(Bad.verify()));
  }
  {
    obj::Image Bad = *Img;
    ASSERT_GE(Bad.GatSize, 8u);
    for (unsigned Byte = 0; Byte < 8; ++Byte)
      Bad.Data[Bad.GatBase - Bad.DataBase + Byte] = 0xEE;
    EXPECT_TRUE(bool(Bad.verify()));
  }
  {
    obj::Image Bad = *Img;
    // Point a branch far outside text: craft br +huge at the entry.
    uint32_t Word =
        isa::encode(isa::makeBranch(isa::Opcode::Br, isa::Zero, 500000));
    size_t Off = Bad.Entry - Bad.TextBase;
    for (unsigned Byte = 0; Byte < 4; ++Byte)
      Bad.Text[Off + Byte] = static_cast<uint8_t>(Word >> (8 * Byte));
    EXPECT_TRUE(bool(Bad.verify()));
  }
}

TEST(ImageTest, RejectsCorruption) {
  obj::Image Img;
  Img.Text = {0, 0, 0, 0};
  std::vector<uint8_t> Bytes = Img.serialize();
  Bytes[2] ^= 0x40;
  EXPECT_FALSE(bool(obj::Image::deserialize(Bytes)));
}

} // namespace

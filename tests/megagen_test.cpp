//===- tests/megagen_test.cpp - Mega-scale workload generator tests -------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tier-1 coverage for src/megagen and the scaling behaviour it exists to
/// exercise:
///
///   * the generator is deterministic: same spec, same object bytes,
///   * generated modules pass ObjectFile::verify and link at every level,
///   * OM at every level preserves the generated program's behaviour,
///   * -j1 and -j4 produce byte-identical images on a small mega shape,
///   * the serial fallback engages below the cutoff (so -jN can never
///     lose to -j1 on tiny inputs) without changing the image,
///   * group reachability stays exact past 64 GAT groups: the GP-reset
///     counts match the generator's call census, not a saturated mask,
///   * the 64-bit literal-id census rejects counts past the 32-bit space.
///
//===----------------------------------------------------------------------===//

#include "megagen/MegaGen.h"
#include "om/Om.h"
#include "om/OmImpl.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace om64;
using namespace om64::megagen;
using namespace om64::obj;
using namespace om64::om;

namespace {

MegaSpec smallSpec() {
  MegaSpec Spec;
  Spec.Seed = 5;
  Spec.Shape = CallShape::Mixed;
  Spec.Modules = 8;
  Spec.ProcsPerModule = 6;
  Spec.TargetInstructions = 12000;
  return Spec;
}

OmResult runOm(const std::vector<ObjectFile> &Objs, const OmOptions &Opts) {
  Result<OmResult> R = om::optimize(Objs, Opts);
  EXPECT_TRUE(bool(R)) << (R ? "" : R.message());
  return R ? R.take() : OmResult{};
}

int64_t runExitCode(const Image &Img) {
  Result<sim::SimResult> R = sim::run(Img);
  EXPECT_TRUE(bool(R)) << (R ? "" : R.message());
  return R ? R->ExitCode : -1;
}

TEST(MegaGenTest, DeterministicAcrossCalls) {
  MegaProgram A = generate(smallSpec());
  MegaProgram B = generate(smallSpec());
  ASSERT_EQ(A.Objects.size(), B.Objects.size());
  for (size_t I = 0; I < A.Objects.size(); ++I)
    EXPECT_TRUE(A.Objects[I].serialize() == B.Objects[I].serialize())
        << "module " << I << " differs between two identical-spec runs";
  EXPECT_EQ(A.Summary.TotalInstructions, B.Summary.TotalInstructions);
  EXPECT_EQ(A.Summary.CrossModuleCalls, B.Summary.CrossModuleCalls);

  MegaSpec Other = smallSpec();
  Other.Seed = 6;
  MegaProgram C = generate(Other);
  EXPECT_FALSE(A.Objects[0].serialize() == C.Objects[0].serialize())
      << "different seeds produced identical first modules";
}

TEST(MegaGenTest, ModulesVerifyCleanAndHitTarget) {
  MegaProgram MP = generate(smallSpec());
  ASSERT_EQ(MP.Objects.size(), 8u);
  for (const ObjectFile &O : MP.Objects)
    EXPECT_FALSE(bool(O.verify())) << O.verify().message();
  // The generator overshoots the target by at most a few epilogues.
  EXPECT_GE(MP.Summary.TotalInstructions, smallSpec().TargetInstructions);
  EXPECT_LE(MP.Summary.TotalInstructions,
            smallSpec().TargetInstructions + 2000);
  EXPECT_EQ(MP.Summary.TotalProcedures, 8u * 6u);
}

TEST(MegaGenTest, EveryOmLevelPreservesBehaviour) {
  MegaProgram MP = generate(smallSpec());
  struct LevelConfig {
    OmLevel Level;
    bool Sched;
  };
  const LevelConfig Configs[] = {{OmLevel::None, false},
                                 {OmLevel::Simple, false},
                                 {OmLevel::Full, false},
                                 {OmLevel::Full, true}};
  int64_t Reference = 0;
  bool HaveReference = false;
  for (const LevelConfig &C : Configs) {
    OmOptions Opts;
    Opts.Level = C.Level;
    Opts.Reschedule = C.Sched;
    Opts.AlignLoopTargets = C.Sched;
    OmResult R = runOm(MP.Objects, Opts);
    int64_t Exit = runExitCode(R.Image);
    if (!HaveReference) {
      Reference = Exit;
      HaveReference = true;
    }
    EXPECT_EQ(Exit, Reference)
        << "OM level " << static_cast<int>(C.Level)
        << (C.Sched ? "+sched" : "") << " changed the program's answer";
  }
}

TEST(MegaGenTest, NoneLevelStatsMatchGeneratorCensus) {
  // The generator's call census and OM's own counters are computed by
  // entirely different code; at OM-none (nothing deleted) they must agree
  // exactly, which also guards the counters against 32-bit truncation
  // paths (both sides accumulate in 64 bits).
  MegaProgram MP = generate(smallSpec());
  OmOptions Opts;
  Opts.Level = OmLevel::None;
  OmResult R = runOm(MP.Objects, Opts);
  EXPECT_EQ(R.Stats.InstructionsTotal, MP.Summary.TotalInstructions);
  // OM merges and dedupes the per-module GATs before counting, so its
  // "before" figure is positive but no larger than the raw slot total.
  EXPECT_GT(R.Stats.GatBytesBefore, 0u);
  EXPECT_LE(R.Stats.GatBytesBefore, MP.Summary.GatEntries * 8);
  EXPECT_EQ(R.Stats.CallsTotal, MP.Summary.CrossModuleCalls +
                                    MP.Summary.IntraModuleCalls +
                                    MP.Summary.LeafBsrCalls);
  EXPECT_EQ(R.Stats.CallsNeedingGpReset,
            MP.Summary.CrossModuleCalls + MP.Summary.IntraModuleCalls);
}

TEST(MegaGenTest, J1VsJ4ByteIdenticalOnSmallMegaShape) {
  MegaProgram MP = generate(smallSpec());
  OmOptions Opts;
  Opts.Level = OmLevel::Full;
  Opts.Reschedule = true;
  Opts.AlignLoopTargets = true;
  Opts.SerialFallbackInsts = 0; // force the parallel pipeline
  Opts.Jobs = 1;
  OmResult Serial = runOm(MP.Objects, Opts);
  Opts.Jobs = 4;
  OmResult Par = runOm(MP.Objects, Opts);
  EXPECT_EQ(Serial.Stats.Jobs, 1u);
  EXPECT_EQ(Par.Stats.Jobs, 4u);
  EXPECT_TRUE(Serial.Image.serialize() == Par.Image.serialize())
      << "-j4 mega image differs from the -j1 image";
  EXPECT_EQ(Serial.Stats.AddressLoadsNullified,
            Par.Stats.AddressLoadsNullified);
  EXPECT_EQ(Serial.Stats.InstructionsDeleted, Par.Stats.InstructionsDeleted);
  EXPECT_EQ(Serial.Stats.CallsNeedingGpReset, Par.Stats.CallsNeedingGpReset);
}

TEST(MegaGenTest, SerialFallbackEngagesOnTinyInputs) {
  MegaSpec Tiny = smallSpec();
  Tiny.Modules = 2;
  Tiny.ProcsPerModule = 3;
  Tiny.TargetInstructions = 600;
  MegaProgram MP = generate(Tiny);
  ASSERT_LT(MP.Summary.TotalInstructions, 1u << 15);

  OmOptions Opts;
  Opts.Level = OmLevel::Full;
  Opts.Jobs = 4;
  // Default cutoff: the input is tiny, so the pool must stay serial.
  OmResult Fallback = runOm(MP.Objects, Opts);
  EXPECT_EQ(Fallback.Stats.Jobs, 1u)
      << "serial fallback did not engage below the cutoff";
  // Disabled cutoff: the same link really uses 4 workers...
  Opts.SerialFallbackInsts = 0;
  OmResult Forced = runOm(MP.Objects, Opts);
  EXPECT_EQ(Forced.Stats.Jobs, 4u);
  // ...and the image does not depend on which mode ran.
  EXPECT_TRUE(Fallback.Image.serialize() == Forced.Image.serialize())
      << "serial fallback changed the output image";
}

TEST(MegaGenTest, ReachabilityStaysExactPast64Groups) {
  // 72 modules with one GAT group each: group ids run past the 64 bits a
  // single mask word can name. The old saturating reachability pessimized
  // every GP-reset decision here; the exact multi-word version must keep
  // only the cross-module resets (each module is its own group, so every
  // intra-module callee is provably confined), matching the generator's
  // census exactly.
  MegaSpec Spec;
  Spec.Seed = 11;
  Spec.Shape = CallShape::Mixed;
  Spec.Modules = 72;
  Spec.ProcsPerModule = 3;
  Spec.TargetInstructions = 15000;
  MegaProgram MP = generate(Spec);

  OmOptions Opts;
  Opts.Level = OmLevel::Full;
  Opts.MaxGatEntriesPerGroup = 1; // force one group per module
  Opts.SerialFallbackInsts = 0;
  Opts.Jobs = 1;
  OmResult Full = runOm(MP.Objects, Opts);
  ASSERT_GT(Full.Stats.GpGroups, 64u);
  EXPECT_EQ(Full.Stats.GpGroups, Spec.Modules);
  EXPECT_EQ(Full.Stats.CallsNeedingGpReset, MP.Summary.CrossModuleCalls)
      << "reset nullification saturated instead of staying exact past "
         "64 groups";

  // Determinism and behaviour hold in the many-group regime too.
  Opts.Jobs = 4;
  OmResult Par = runOm(MP.Objects, Opts);
  EXPECT_TRUE(Full.Image.serialize() == Par.Image.serialize())
      << "-j4 image differs from -j1 with >64 GAT groups";
  OmOptions NoneOpts;
  NoneOpts.Level = OmLevel::None;
  OmResult None = runOm(MP.Objects, NoneOpts);
  EXPECT_EQ(runExitCode(Full.Image), runExitCode(None.Image));
}

TEST(MegaGenTest, LiteralIdSpaceGuardRejectsOverflow) {
  // The lift counts literal sites in 64 bits and must refuse totals the
  // 32-bit SymInst::LitId space cannot hold (with ~0u reserved), instead
  // of wrapping and silently aliasing literals on huge programs.
  EXPECT_FALSE(bool(om::checkLiteralIdSpace(1000)));
  EXPECT_TRUE(bool(om::checkLiteralIdSpace(uint64_t(~0u))));
  EXPECT_TRUE(bool(om::checkLiteralIdSpace(1ull << 32)));
  EXPECT_TRUE(bool(om::checkLiteralIdSpace(1ull << 40)));
}

} // namespace

//===- tests/service_test.cpp - omlinkd service-layer tests ---------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The relink daemon's three layers, bottom up:
///
///   * framing: decodeFrame over every truncation prefix and every class
///     of garbage header (pure-function tests, no sockets);
///   * IncrementalLinker: warm-vs-cold byte identity across all 19 seed
///     workloads under seeded edit streams — the correctness oracle the
///     whole cache design answers to;
///   * Daemon + Client over a real Unix-domain socket, in-process:
///     ping, cold relink, edit, warm relink, byte-compare against a
///     from-scratch link, shutdown.
///
//===----------------------------------------------------------------------===//

#include "megagen/MegaGen.h"
#include "om/Incremental.h"
#include "service/Client.h"
#include "service/Daemon.h"
#include "service/Protocol.h"
#include "support/FileIO.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

using namespace om64;

namespace {

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

std::vector<uint8_t> samplePayload() { return {0xDE, 0xAD, 0xBE, 0xEF, 7}; }

TEST(FramingTest, RoundTrip) {
  std::vector<uint8_t> Bytes =
      service::encodeFrame(service::MsgType::PingRequest, samplePayload());
  Result<service::Frame> F = service::decodeFrame(Bytes);
  ASSERT_TRUE(bool(F)) << F.message();
  EXPECT_EQ(F->Type, service::MsgType::PingRequest);
  EXPECT_EQ(F->Payload, samplePayload());
}

TEST(FramingTest, EmptyPayloadRoundTrip) {
  std::vector<uint8_t> Bytes =
      service::encodeFrame(service::MsgType::ShutdownRequest, {});
  Result<service::Frame> F = service::decodeFrame(Bytes);
  ASSERT_TRUE(bool(F)) << F.message();
  EXPECT_EQ(F->Type, service::MsgType::ShutdownRequest);
  EXPECT_TRUE(F->Payload.empty());
}

TEST(FramingTest, TruncationAtEveryByteFails) {
  std::vector<uint8_t> Bytes =
      service::encodeFrame(service::MsgType::RelinkRequest, samplePayload());
  for (size_t Len = 0; Len < Bytes.size(); ++Len) {
    std::vector<uint8_t> Prefix(Bytes.begin(), Bytes.begin() + Len);
    EXPECT_FALSE(bool(service::decodeFrame(Prefix)))
        << "prefix of " << Len << " bytes decoded";
  }
}

TEST(FramingTest, TrailingJunkFails) {
  std::vector<uint8_t> Bytes =
      service::encodeFrame(service::MsgType::PingRequest, samplePayload());
  Bytes.push_back(0);
  EXPECT_FALSE(bool(service::decodeFrame(Bytes)));
}

TEST(FramingTest, GarbageHeadersFail) {
  std::vector<uint8_t> Good =
      service::encodeFrame(service::MsgType::PingRequest, {});

  std::vector<uint8_t> BadMagic = Good;
  BadMagic[0] ^= 0xFF;
  EXPECT_FALSE(bool(service::decodeFrame(BadMagic)));

  std::vector<uint8_t> BadVersion = Good;
  BadVersion[4] = 0x7F;
  EXPECT_FALSE(bool(service::decodeFrame(BadVersion)));

  std::vector<uint8_t> BadType = Good;
  BadType[6] = 99;
  EXPECT_FALSE(bool(service::decodeFrame(BadType)));

  // A length field announcing more than the hard payload cap must be
  // rejected on the header alone.
  std::vector<uint8_t> HugeLen = Good;
  for (int I = 0; I < 8; ++I)
    HugeLen[8 + I] = 0xFF;
  EXPECT_FALSE(bool(service::decodeFrame(HugeLen)));

  std::vector<uint8_t> AllZero(service::FrameHeaderSize, 0);
  EXPECT_FALSE(bool(service::decodeFrame(AllZero)));
}

TEST(FramingTest, RelinkRequestRoundTrip) {
  service::RelinkRequest Req;
  Req.Opts.Level = om::OmLevel::Full;
  Req.Opts.Reschedule = true;
  Req.Opts.AlignLoopTargets = true;
  Req.Opts.SortDataBySize = false;
  Req.Opts.Analysis = true;
  Req.Opts.Verify = true;
  Req.Opts.Jobs = 3;
  Req.Opts.MaxGatEntriesPerGroup = 512;
  Req.Opts.EntryName = "alt.main";
  Req.OutputPath = "/tmp/x.aaxe";
  Req.InputPaths = {"/tmp/a.aaxo", "/tmp/b.aaxo"};

  Result<service::RelinkRequest> D =
      service::decodeRelinkRequest(service::encodeRelinkRequest(Req));
  ASSERT_TRUE(bool(D)) << D.message();
  EXPECT_EQ(D->Opts.Level, Req.Opts.Level);
  EXPECT_EQ(D->Opts.Reschedule, true);
  EXPECT_EQ(D->Opts.SortDataBySize, false);
  EXPECT_EQ(D->Opts.Analysis, true);
  EXPECT_EQ(D->Opts.Jobs, 3u);
  EXPECT_EQ(D->Opts.MaxGatEntriesPerGroup, 512u);
  EXPECT_EQ(D->Opts.EntryName, "alt.main");
  EXPECT_EQ(D->OutputPath, Req.OutputPath);
  EXPECT_EQ(D->InputPaths, Req.InputPaths);
  EXPECT_EQ(service::optionsKey(D->Opts), service::optionsKey(Req.Opts));
}

TEST(FramingTest, RelinkRequestGarbageFails) {
  EXPECT_FALSE(bool(service::decodeRelinkRequest({})));
  EXPECT_FALSE(bool(service::decodeRelinkRequest({1, 2, 3})));
  // A valid encoding with a byte chopped off or appended must fail too.
  service::RelinkRequest Req;
  Req.OutputPath = "/tmp/x.aaxe";
  Req.InputPaths = {"/tmp/a.aaxo"};
  std::vector<uint8_t> Enc = service::encodeRelinkRequest(Req);
  std::vector<uint8_t> Short(Enc.begin(), Enc.end() - 1);
  EXPECT_FALSE(bool(service::decodeRelinkRequest(Short)));
  Enc.push_back(0);
  EXPECT_FALSE(bool(service::decodeRelinkRequest(Enc)));
}

TEST(FramingTest, ResponseRoundTrip) {
  service::Response R;
  R.Status = 1;
  R.Message = "boom";
  R.Warm = true;
  R.ModulesTotal = 9;
  R.ModulesReparsed = 1;
  R.ProcsTotal = 80;
  R.ProcsRelifted = 20;
  R.SummaryRoundHits = 958;
  R.SummaryRoundMisses = 2;
  R.Micros = 10200;
  Result<service::Response> D =
      service::decodeResponse(service::encodeResponse(R));
  ASSERT_TRUE(bool(D)) << D.message();
  EXPECT_EQ(D->Status, 1);
  EXPECT_EQ(D->Message, "boom");
  EXPECT_EQ(D->Warm, true);
  EXPECT_EQ(D->ModulesTotal, 9u);
  EXPECT_EQ(D->SummaryRoundHits, 958u);
  EXPECT_EQ(D->Micros, 10200u);
}

TEST(FramingTest, OptionsKeySeparatesOptionSets) {
  om::OmOptions A, B;
  EXPECT_EQ(service::optionsKey(A), service::optionsKey(B));
  B.Analysis = true;
  EXPECT_NE(service::optionsKey(A), service::optionsKey(B));
  B = A;
  B.MaxGatEntriesPerGroup = 64;
  EXPECT_NE(service::optionsKey(A), service::optionsKey(B));
  B = A;
  B.EntryName = "other.main";
  EXPECT_NE(service::optionsKey(A), service::optionsKey(B));
  // Lint flags ride the wire (bits 6/7) and must split the key, or a warm
  // daemon could serve stale (or missing) diagnostics.
  B = A;
  B.Lint = true;
  EXPECT_NE(service::optionsKey(A), service::optionsKey(B));
  B.LintExplain = true;
  EXPECT_NE(service::optionsKey(A),
            service::optionsKey(B)); // both bits distinct
  om::OmOptions C = A;
  C.Lint = true;
  EXPECT_NE(service::optionsKey(B), service::optionsKey(C));
}

//===----------------------------------------------------------------------===//
// IncrementalLinker: warm vs cold byte identity
//===----------------------------------------------------------------------===//

/// From-scratch link of serialized modules — the byte-identity oracle.
std::vector<uint8_t> coldLink(const std::vector<std::vector<uint8_t>> &Mods,
                              const om::OmOptions &Opts) {
  std::vector<obj::ObjectFile> Objs;
  for (const std::vector<uint8_t> &B : Mods) {
    Result<obj::ObjectFile> O = obj::ObjectFile::deserialize(B);
    EXPECT_TRUE(bool(O)) << O.message();
    Objs.push_back(O.take());
  }
  Result<om::OmResult> R = om::optimize(Objs, Opts);
  EXPECT_TRUE(bool(R)) << R.message();
  return R->Image.serialize();
}

/// Perturbs one module near \p Idx (rotating past modules with no
/// eligible site) and returns the index actually edited.
size_t editOneModule(std::vector<std::vector<uint8_t>> &Mods, size_t Idx,
                     uint64_t Seed) {
  for (size_t Tried = 0; Tried < Mods.size(); ++Tried) {
    size_t I = (Idx + Tried) % Mods.size();
    Result<obj::ObjectFile> O = obj::ObjectFile::deserialize(Mods[I]);
    EXPECT_TRUE(bool(O)) << O.message();
    if (!megagen::perturbModule(*O, Seed))
      continue;
    Mods[I] = O->serialize();
    return I;
  }
  ADD_FAILURE() << "no module has a perturbable site";
  return 0;
}

std::vector<std::vector<uint8_t>> workloadModules(const std::string &Name) {
  Result<wl::BuiltWorkload> W = wl::buildWorkload(Name);
  EXPECT_TRUE(bool(W)) << W.message();
  std::vector<std::vector<uint8_t>> Mods;
  for (const obj::ObjectFile &O : W->linkSet(wl::CompileMode::Each))
    Mods.push_back(O.serialize());
  return Mods;
}

/// Cold link, then \p Edits perturb+relink rounds, asserting byte
/// identity against a from-scratch link after every warm relink.
void checkEditStream(const std::string &Name,
                     std::vector<std::vector<uint8_t>> Mods,
                     const om::OmOptions &Opts, unsigned Edits,
                     uint64_t Seed) {
  om::IncrementalLinker L(Opts);
  Result<om::RelinkResult> R = L.relink(Mods);
  ASSERT_TRUE(bool(R)) << Name << ": " << R.message();
  EXPECT_FALSE(R->Stats.Warm) << Name;
  EXPECT_EQ(R->ImageBytes, coldLink(Mods, Opts)) << Name << ": cold";

  for (unsigned E = 0; E < Edits; ++E) {
    editOneModule(Mods, (E * 5 + 2) % Mods.size(), Seed + E);
    R = L.relink(Mods);
    ASSERT_TRUE(bool(R)) << Name << ": " << R.message();
    EXPECT_TRUE(R->Stats.Warm) << Name;
    EXPECT_EQ(R->Stats.ModulesReparsed, 1u) << Name;
    EXPECT_LT(R->Stats.ModulesRelifted, R->Stats.ModulesTotal) << Name;
    EXPECT_EQ(R->ImageBytes, coldLink(Mods, Opts))
        << Name << ": warm image differs from from-scratch link at edit "
        << E;
  }
}

TEST(IncrementalLinkerTest, WarmEqualsColdOnEveryWorkload) {
  om::OmOptions Opts;
  Opts.Level = om::OmLevel::Full;
  Opts.Reschedule = true;
  Opts.AlignLoopTargets = true;
  for (const std::string &Name : wl::workloadNames())
    checkEditStream(Name, workloadModules(Name), Opts, /*Edits=*/2,
                    /*Seed=*/1000);
}

TEST(IncrementalLinkerTest, WarmEqualsColdWithAnalysis) {
  om::OmOptions Opts;
  Opts.Level = om::OmLevel::Full;
  Opts.Reschedule = true;
  Opts.AlignLoopTargets = true;
  Opts.Analysis = true;
  // A few representative workloads; the full sweep is the slow test and
  // the bench. alvinn is FP-loop-shaped, espresso call-heavy, li
  // interpreter-shaped.
  for (const char *Name : {"alvinn", "espresso", "li"})
    checkEditStream(Name, workloadModules(Name), Opts, /*Edits=*/2,
                    /*Seed=*/2000);
}

TEST(IncrementalLinkerTest, AnalysisCacheActuallyHits) {
  om::OmOptions Opts;
  Opts.Level = om::OmLevel::Full;
  Opts.Analysis = true;
  std::vector<std::vector<uint8_t>> Mods = workloadModules("ear");
  om::IncrementalLinker L(Opts);
  Result<om::RelinkResult> R = L.relink(Mods);
  ASSERT_TRUE(bool(R)) << R.message();
  EXPECT_GT(R->Stats.SummaryRoundMisses, 0u);

  editOneModule(Mods, 0, 77);
  R = L.relink(Mods);
  ASSERT_TRUE(bool(R)) << R.message();
  EXPECT_TRUE(R->Stats.Warm);
  // A one-module edit must mostly hit: far more summaries are reused
  // than recomputed.
  EXPECT_GT(R->Stats.SummaryRoundHits, R->Stats.SummaryRoundMisses);
}

TEST(IncrementalLinkerTest, IdenticalInputsShortCircuit) {
  om::OmOptions Opts;
  Opts.Level = om::OmLevel::Full;
  std::vector<std::vector<uint8_t>> Mods = workloadModules("compress");
  om::IncrementalLinker L(Opts);
  Result<om::RelinkResult> First = L.relink(Mods);
  ASSERT_TRUE(bool(First)) << First.message();
  Result<om::RelinkResult> Second = L.relink(Mods);
  ASSERT_TRUE(bool(Second)) << Second.message();
  EXPECT_TRUE(Second->Stats.InputUnchanged);
  EXPECT_EQ(Second->Stats.ModulesReparsed, 0u);
  EXPECT_EQ(Second->ImageBytes, First->ImageBytes);
}

TEST(IncrementalLinkerTest, CorruptModuleFailsAndStateSurvives) {
  om::OmOptions Opts;
  Opts.Level = om::OmLevel::Full;
  std::vector<std::vector<uint8_t>> Mods = workloadModules("eqntott");
  om::IncrementalLinker L(Opts);
  Result<om::RelinkResult> Good = L.relink(Mods);
  ASSERT_TRUE(bool(Good)) << Good.message();

  std::vector<std::vector<uint8_t>> Bad = Mods;
  Bad[1] = {1, 2, 3, 4};
  Result<om::RelinkResult> R = L.relink(Bad);
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.message().find("module 1"), std::string::npos);

  // The linker must still serve the original inputs correctly.
  Result<om::RelinkResult> Again = L.relink(Mods);
  ASSERT_TRUE(bool(Again)) << Again.message();
  EXPECT_EQ(Again->ImageBytes, Good->ImageBytes);
}

TEST(IncrementalLinkerTest, BadOptionsSurfaceOnFirstRelink) {
  om::OmOptions Opts;
  Opts.Level = om::OmLevel::Simple;
  Opts.InstrumentProcedureCounts = true; // requires OM-full
  om::IncrementalLinker L(Opts);
  Result<om::RelinkResult> R = L.relink(workloadModules("sc"));
  EXPECT_FALSE(bool(R));
}

//===----------------------------------------------------------------------===//
// Daemon + Client over a real socket
//===----------------------------------------------------------------------===//

class DaemonTest : public ::testing::Test {
protected:
  void SetUp() override {
    // sun_path is ~108 bytes; TempDir() is /tmp-ish so this stays short.
    Dir = ::testing::TempDir() + "om64_svc_XXXXXX";
    ASSERT_NE(mkdtemp(Dir.data()), nullptr);
    Socket = Dir + "/d.sock";
  }

  void startDaemon(service::DaemonOptions O) {
    O.SocketPath = Socket;
    D = std::make_unique<service::Daemon>(std::move(O));
    ASSERT_FALSE(bool(D->start()));
    Runner = std::thread([this] { RunError = D->run(); });
  }

  void TearDown() override {
    if (Runner.joinable()) {
      D->requestStop();
      Runner.join();
    }
    EXPECT_FALSE(bool(RunError)) << RunError.message();
  }

  std::string Dir, Socket;
  std::unique_ptr<service::Daemon> D;
  std::thread Runner;
  Error RunError;
};

TEST_F(DaemonTest, PingAndShutdown) {
  startDaemon({});
  Result<service::Response> R = service::requestPing(Socket);
  ASSERT_TRUE(bool(R)) << R.message();
  EXPECT_EQ(R->Status, 0);
  EXPECT_EQ(R->Message, "pong");

  R = service::requestShutdown(Socket);
  ASSERT_TRUE(bool(R)) << R.message();
  EXPECT_EQ(R->Status, 0);
  Runner.join();
  EXPECT_EQ(D->requestsServed(), 2u);
}

TEST_F(DaemonTest, ColdEditWarmRelinkByteIdentical) {
  // A small generated program on disk, like a compiler would leave it.
  megagen::MegaSpec Spec;
  Spec.Modules = 4;
  Spec.ProcsPerModule = 8;
  Spec.TargetInstructions = 4000;
  megagen::MegaProgram MP = megagen::generate(Spec);
  service::RelinkRequest Req;
  Req.Opts.Level = om::OmLevel::Full;
  Req.Opts.Reschedule = true;
  Req.Opts.AlignLoopTargets = true;
  Req.OutputPath = Dir + "/out.aaxe";
  for (size_t I = 0; I < MP.Objects.size(); ++I) {
    std::string Path = Dir + "/m" + std::to_string(I) + ".aaxo";
    ASSERT_FALSE(bool(writeFileBytes(Path, MP.Objects[I].serialize())));
    Req.InputPaths.push_back(Path);
  }
  auto refImage = [&] {
    std::vector<std::vector<uint8_t>> Mods;
    for (const std::string &P : Req.InputPaths) {
      Result<std::vector<uint8_t>> B = readFileBytes(P);
      EXPECT_TRUE(bool(B)) << B.message();
      Mods.push_back(B.take());
    }
    return coldLink(Mods, Req.Opts);
  };

  startDaemon({});

  Result<service::Response> R = service::requestRelink(Socket, Req);
  ASSERT_TRUE(bool(R)) << R.message();
  ASSERT_EQ(R->Status, 0) << R->Message;
  EXPECT_FALSE(R->Warm);
  EXPECT_EQ(R->ModulesTotal, 4u);
  EXPECT_EQ(R->ModulesReparsed, 4u);
  Result<std::vector<uint8_t>> Out = readFileBytes(Req.OutputPath);
  ASSERT_TRUE(bool(Out)) << Out.message();
  EXPECT_EQ(*Out, refImage());

  // Edit one module on disk; the warm relink must reparse exactly that
  // module and still match a from-scratch link of the edited tree.
  Result<std::vector<uint8_t>> ModBytes = readFileBytes(Req.InputPaths[2]);
  ASSERT_TRUE(bool(ModBytes)) << ModBytes.message();
  Result<obj::ObjectFile> Obj = obj::ObjectFile::deserialize(*ModBytes);
  ASSERT_TRUE(bool(Obj)) << Obj.message();
  ASSERT_TRUE(megagen::perturbModule(*Obj, 42));
  ASSERT_FALSE(
      bool(writeFileBytes(Req.InputPaths[2], Obj->serialize())));

  R = service::requestRelink(Socket, Req);
  ASSERT_TRUE(bool(R)) << R.message();
  ASSERT_EQ(R->Status, 0) << R->Message;
  EXPECT_TRUE(R->Warm);
  EXPECT_EQ(R->ModulesReparsed, 1u);
  Out = readFileBytes(Req.OutputPath);
  ASSERT_TRUE(bool(Out)) << Out.message();
  EXPECT_EQ(*Out, refImage());

  // Same bytes again: the no-op fast path, still the same image.
  R = service::requestRelink(Socket, Req);
  ASSERT_TRUE(bool(R)) << R.message();
  ASSERT_EQ(R->Status, 0) << R->Message;
  EXPECT_TRUE(R->InputUnchanged);
}

TEST_F(DaemonTest, LintOptionFlipForcesColdRestart) {
  // Warm state is keyed on the full option set; flipping --lint must not
  // reuse it — a lint-less warm answer would silently drop diagnostics.
  megagen::MegaSpec Spec;
  Spec.Modules = 3;
  Spec.ProcsPerModule = 6;
  Spec.TargetInstructions = 2000;
  megagen::MegaProgram MP = megagen::generate(Spec);
  service::RelinkRequest Req;
  Req.Opts.Level = om::OmLevel::Full;
  Req.OutputPath = Dir + "/out.aaxe";
  for (size_t I = 0; I < MP.Objects.size(); ++I) {
    std::string Path = Dir + "/m" + std::to_string(I) + ".aaxo";
    ASSERT_FALSE(bool(writeFileBytes(Path, MP.Objects[I].serialize())));
    Req.InputPaths.push_back(Path);
  }

  startDaemon({});

  Result<service::Response> R = service::requestRelink(Socket, Req);
  ASSERT_TRUE(bool(R)) << R.message();
  ASSERT_EQ(R->Status, 0) << R->Message;
  EXPECT_FALSE(R->Warm);

  // Unchanged options and inputs: warm.
  R = service::requestRelink(Socket, Req);
  ASSERT_TRUE(bool(R)) << R.message();
  ASSERT_EQ(R->Status, 0) << R->Message;
  EXPECT_TRUE(R->Warm);

  // --lint flipped on: a different configuration — cold restart.
  Req.Opts.Lint = true;
  R = service::requestRelink(Socket, Req);
  ASSERT_TRUE(bool(R)) << R.message();
  ASSERT_EQ(R->Status, 0) << R->Message;
  EXPECT_FALSE(R->Warm);

  // And flipping --explain on top is yet another configuration.
  Req.Opts.LintExplain = true;
  R = service::requestRelink(Socket, Req);
  ASSERT_TRUE(bool(R)) << R.message();
  ASSERT_EQ(R->Status, 0) << R->Message;
  EXPECT_FALSE(R->Warm);
}

TEST_F(DaemonTest, MissingInputIsARequestErrorNotACrash) {
  startDaemon({});
  service::RelinkRequest Req;
  Req.OutputPath = Dir + "/out.aaxe";
  Req.InputPaths = {Dir + "/nope.aaxo"};
  Result<service::Response> R = service::requestRelink(Socket, Req);
  ASSERT_TRUE(bool(R)) << R.message();
  EXPECT_NE(R->Status, 0);
  EXPECT_NE(R->Message.find("nope.aaxo"), std::string::npos);

  // The daemon survives and still answers.
  R = service::requestPing(Socket);
  ASSERT_TRUE(bool(R)) << R.message();
  EXPECT_EQ(R->Status, 0);
}

TEST_F(DaemonTest, MaxRequestsStopsTheLoop) {
  service::DaemonOptions O;
  O.MaxRequests = 1;
  startDaemon(std::move(O));
  Result<service::Response> R = service::requestPing(Socket);
  ASSERT_TRUE(bool(R)) << R.message();
  Runner.join();
  EXPECT_EQ(D->requestsServed(), 1u);
}

} // namespace

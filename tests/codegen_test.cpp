//===- tests/codegen_test.cpp - Code generation convention tests ----------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks that generated code follows the paper's conservative 64-bit
/// conventions exactly: Figure 1's calling sequence (PV load from the GAT,
/// JSR, post-call GP reset pair) and prologue (GP from PV), Figure 2's
/// address-load + use patterns with their lituse links, and the
/// compile-each vs compile-all differences of section 5.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace om64;
using namespace om64::isa;
using namespace om64::obj;
using namespace om64::test;

namespace {

std::vector<Inst> decodeText(const ObjectFile &O) {
  std::vector<Inst> Out;
  for (size_t Off = 0; Off + 4 <= O.Text.size(); Off += 4) {
    uint32_t W = static_cast<uint32_t>(O.Text[Off]) |
                 (static_cast<uint32_t>(O.Text[Off + 1]) << 8) |
                 (static_cast<uint32_t>(O.Text[Off + 2]) << 16) |
                 (static_cast<uint32_t>(O.Text[Off + 3]) << 24);
    std::optional<Inst> I = decode(W);
    EXPECT_TRUE(I.has_value());
    Out.push_back(I.value_or(Inst::nop()));
  }
  return Out;
}

const Reloc *findRelocAt(const ObjectFile &O, RelocKind K, uint64_t Off) {
  for (const Reloc &R : O.Relocs)
    if (R.Kind == K && R.Offset == Off)
      return &R;
  return nullptr;
}

unsigned countRelocs(const ObjectFile &O, RelocKind K) {
  unsigned N = 0;
  for (const Reloc &R : O.Relocs)
    N += R.Kind == K;
  return N;
}

ObjectFile compileOne(const std::string &Source, bool Schedule,
                      bool InterUnit = false,
                      const std::string &Extra = std::string(),
                      const std::string &ExtraName = "other") {
  std::vector<std::pair<std::string, std::string>> Mods = {{"t", Source}};
  if (!Extra.empty())
    Mods.push_back({ExtraName, Extra});
  lang::Program P = parseProgram(Mods);
  cg::CompileOptions Opts;
  Opts.Schedule = Schedule;
  Opts.InterUnit = InterUnit;
  std::vector<std::string> Unit = {"t"};
  if (InterUnit && !Extra.empty())
    Unit.push_back(ExtraName);
  Result<ObjectFile> O = cg::compileUnit(P, Unit, Opts);
  EXPECT_TRUE(bool(O)) << (O ? "" : O.message());
  return O ? O.take() : ObjectFile{};
}

constexpr const char *CallAndGlobalSource = R"(
module t;
import io;
var counter: int;
export func main(): int {
  counter = counter + 1;
  io.print_int(counter);
  return counter;
}
)";

TEST(CodegenTest, PrologueShapeUnscheduled) {
  // Without compile-time scheduling the GP-set pair is the entry prefix:
  //   ldah gp, hi(pv) ; lda gp, lo(gp)   (Figure 1).
  ObjectFile O = compileOne(CallAndGlobalSource, /*Schedule=*/false);
  std::vector<Inst> Text = decodeText(O);
  ASSERT_EQ(O.Procs.size(), 1u);
  uint64_t Entry = O.Procs[0].TextOffset;
  size_t E = Entry / 4;
  EXPECT_EQ(Text[E].Op, Opcode::Ldah);
  EXPECT_EQ(Text[E].Ra, GP);
  EXPECT_EQ(Text[E].Rb, PV);
  EXPECT_EQ(Text[E + 1].Op, Opcode::Lda);
  EXPECT_EQ(Text[E + 1].Ra, GP);
  EXPECT_EQ(Text[E + 1].Rb, GP);

  const Reloc *Gp = findRelocAt(O, RelocKind::GpDisp, Entry);
  ASSERT_NE(Gp, nullptr) << "prologue pair must carry a GPDISP relocation";
  EXPECT_EQ(Gp->PairOffset, 4u);
  EXPECT_EQ(Gp->AnchorOffset, Entry) << "prologue anchor is the entry (PV)";
  EXPECT_EQ(Gp->GpKind, 0);
}

TEST(CodegenTest, SchedulingDispersesTheProloguePair) {
  // With scheduling on (the paper's compilers), the LDAH/LDA pair is no
  // longer adjacent at entry -- the effect that blocks OM-simple's
  // BSR-past-prologue trick (section 4).
  ObjectFile O = compileOne(CallAndGlobalSource, /*Schedule=*/true);
  bool FoundDispersedPair = false;
  for (const Reloc &R : O.Relocs)
    if (R.Kind == RelocKind::GpDisp && R.GpKind == 0)
      FoundDispersedPair = R.PairOffset != 4 || R.Offset != 0;
  EXPECT_TRUE(FoundDispersedPair);
}

TEST(CodegenTest, CallSequenceShape) {
  // Figure 1's call site: ldq pv, disp(gp) [LITERAL]; jsr ra,(pv)
  // [LITUSE_JSR]; ldah gp, hi(ra); lda gp, lo(gp) [GPDISP post-call].
  ObjectFile O = compileOne(CallAndGlobalSource, /*Schedule=*/false);
  std::vector<Inst> Text = decodeText(O);

  size_t JsrIdx = ~size_t(0);
  for (size_t I = 0; I < Text.size(); ++I)
    if (Text[I].Op == Opcode::Jsr)
      JsrIdx = I;
  ASSERT_NE(JsrIdx, ~size_t(0)) << "library call must be a JSR";
  EXPECT_EQ(Text[JsrIdx].Ra, RA);
  EXPECT_EQ(Text[JsrIdx].Rb, PV);

  const Reloc *Use = findRelocAt(O, RelocKind::LituseJsr, JsrIdx * 4);
  ASSERT_NE(Use, nullptr);

  // The PV load shares the literal id.
  const Inst &PvLoad = Text[JsrIdx - 1];
  EXPECT_EQ(PvLoad.Op, Opcode::Ldq);
  EXPECT_EQ(PvLoad.Ra, PV);
  EXPECT_EQ(PvLoad.Rb, GP);
  const Reloc *Lit = findRelocAt(O, RelocKind::Literal, (JsrIdx - 1) * 4);
  ASSERT_NE(Lit, nullptr);
  EXPECT_EQ(Lit->LiteralId, Use->LiteralId);

  // The reset pair follows, anchored at the return point.
  EXPECT_EQ(Text[JsrIdx + 1].Op, Opcode::Ldah);
  EXPECT_EQ(Text[JsrIdx + 1].Rb, RA);
  const Reloc *Reset =
      findRelocAt(O, RelocKind::GpDisp, (JsrIdx + 1) * 4);
  ASSERT_NE(Reset, nullptr);
  EXPECT_EQ(Reset->GpKind, 1);
  EXPECT_EQ(Reset->AnchorOffset, JsrIdx * 4 + 4);
}

TEST(CodegenTest, GlobalAccessShape) {
  // Figure 2: fetch is an address load plus a load through the pointer,
  // with a LITUSE_BASE link.
  ObjectFile O = compileOne(CallAndGlobalSource, /*Schedule=*/false);
  std::vector<Inst> Text = decodeText(O);
  bool Found = false;
  for (const Reloc &R : O.Relocs) {
    if (R.Kind != RelocKind::Literal)
      continue;
    if (O.Symbols[O.Gat[R.GatIndex].SymbolIndex].Name != "t.counter")
      continue;
    // Find the use with the same literal id.
    for (const Reloc &U : O.Relocs)
      if (U.Kind == RelocKind::LituseBase && U.LiteralId == R.LiteralId) {
        const Inst &Load = Text[R.Offset / 4];
        const Inst &UseInst = Text[U.Offset / 4];
        EXPECT_EQ(Load.Op, Opcode::Ldq);
        EXPECT_EQ(Load.Rb, GP);
        EXPECT_EQ(UseInst.Rb, Load.Ra) << "use reads the loaded pointer";
        Found = true;
      }
  }
  EXPECT_TRUE(Found);
}

TEST(CodegenTest, UnexportedSameModuleCallsUseBsr) {
  // Footnote 2: the compiler may optimize calls to unexported procedures
  // in the same compilation unit.
  ObjectFile O = compileOne(R"(
module t;
func helper(x: int): int { return x * 2; }
export func main(): int { return helper(21); }
)", /*Schedule=*/false);
  std::vector<Inst> Text = decodeText(O);
  bool HasBsr = false, HasJsr = false;
  for (const Inst &I : Text) {
    HasBsr |= I.Op == Opcode::Bsr;
    HasJsr |= I.Op == Opcode::Jsr;
  }
  EXPECT_TRUE(HasBsr);
  EXPECT_FALSE(HasJsr);
  // main must establish GP (its BSR callee inherits it); helper is
  // GP-free and prologue-less.
  unsigned PrologueGpDisp = 0;
  for (const Reloc &R : O.Relocs)
    PrologueGpDisp += R.Kind == RelocKind::GpDisp && R.GpKind == 0;
  EXPECT_EQ(PrologueGpDisp, 1u);
}

TEST(CodegenTest, BsrCalleeUsingGlobalsInheritsCallerGp) {
  // A direct (unexported) callee that accesses globals relies on the
  // caller's GP instead of setting its own: same unit, same GAT.
  ObjectFile O = compileOne(R"(
module t;
var acc: int;
func helper(x: int): int { acc = acc + x; return acc; }
export func main(): int { return helper(21); }
)", /*Schedule=*/false);
  std::vector<Inst> Text = decodeText(O);
  bool HasBsr = false;
  for (const Inst &I : Text)
    HasBsr |= I.Op == Opcode::Bsr;
  EXPECT_TRUE(HasBsr);
  // Exactly one prologue GPDISP (main's); helper uses GP but never sets
  // it.
  unsigned PrologueGpDisp = 0;
  for (const Reloc &R : O.Relocs)
    PrologueGpDisp += R.Kind == RelocKind::GpDisp && R.GpKind == 0;
  EXPECT_EQ(PrologueGpDisp, 1u);
  ASSERT_EQ(O.Procs.size(), 2u);
  EXPECT_TRUE(O.Procs[0].UsesGp) << "helper reads globals through GP";
}

TEST(CodegenTest, ExportedSameModuleCallsStayConservative) {
  ObjectFile O = compileOne(R"(
module t;
export func helper(x: int): int { return x * 2; }
export func main(): int { return helper(21); }
)", /*Schedule=*/false);
  std::vector<Inst> Text = decodeText(O);
  bool HasJsr = false;
  for (const Inst &I : Text)
    HasJsr |= I.Op == Opcode::Jsr;
  EXPECT_TRUE(HasJsr)
      << "exported callees may be preempted; compile-each must use JSR";
}

TEST(CodegenTest, CompileAllOptimizesCrossModuleUserCalls) {
  const char *Main = R"(
module t;
import other;
export func main(): int { return other.work(4); }
)";
  const char *Other = R"(
module other;
export func work(x: int): int { return x + 1; }
)";
  // compile-each: conservative JSR.
  {
    lang::Program P = parseProgram({{"t", Main}, {"other", Other}});
    cg::CompileOptions Opts;
    Opts.Schedule = false;
    Result<ObjectFile> O = cg::compileUnit(P, {"t"}, Opts);
    ASSERT_TRUE(bool(O)) << O.message();
    bool HasJsr = false;
    for (const Inst &I : decodeText(*O))
      HasJsr |= I.Op == Opcode::Jsr;
    EXPECT_TRUE(HasJsr);
  }
  // compile-all: direct BSR, even though work is exported.
  {
    ObjectFile O = compileOne(Main, /*Schedule=*/false,
                              /*InterUnit=*/true, Other);
    bool HasJsr = false, HasBsr = false;
    for (const Inst &I : decodeText(O)) {
      HasJsr |= I.Op == Opcode::Jsr;
      HasBsr |= I.Op == Opcode::Bsr;
    }
    EXPECT_FALSE(HasJsr);
    EXPECT_TRUE(HasBsr);
  }
}

TEST(CodegenTest, AddressTakenProcedureStaysConservative) {
  ObjectFile O = compileOne(R"(
module t;
var f: funcptr;
func callee(a: int): int { return a; }
export func main(): int {
  f = &callee;
  return f(7) + callee(1);
}
)", /*Schedule=*/false);
  // callee's address escapes, so even the direct call keeps the full
  // convention: the call to callee is a JSR, not a BSR.
  bool HasBsr = false;
  unsigned Jsrs = 0;
  for (const Inst &I : decodeText(O)) {
    HasBsr |= I.Op == Opcode::Bsr;
    Jsrs += I.Op == Opcode::Jsr;
  }
  EXPECT_FALSE(HasBsr);
  EXPECT_EQ(Jsrs, 2u) << "one indirect call, one conservative direct call";
  // The &callee literal has no lituse link (it escapes).
  bool FoundEscaping = false;
  for (const Reloc &R : O.Relocs) {
    if (R.Kind != RelocKind::Literal)
      continue;
    if (O.Symbols[O.Gat[R.GatIndex].SymbolIndex].Name != "t.callee")
      continue;
    bool HasUse = false;
    for (const Reloc &U : O.Relocs)
      if (U.Kind != RelocKind::Literal && U.LiteralId == R.LiteralId)
        HasUse = true;
    FoundEscaping |= !HasUse;
  }
  EXPECT_TRUE(FoundEscaping);
}

TEST(CodegenTest, GatIsDeduplicatedPerUnit) {
  ObjectFile O = compileOne(R"(
module t;
var a: int;
export func main(): int {
  a = 1;
  a = a + 2;
  a = a + 3;
  return a;
}
)", /*Schedule=*/false);
  // One GAT entry for t.a despite many references.
  unsigned EntriesForA = 0;
  for (const GatEntry &E : O.Gat)
    EntriesForA += O.Symbols[E.SymbolIndex].Name == "t.a";
  EXPECT_EQ(EntriesForA, 1u);
  EXPECT_GE(countRelocs(O, RelocKind::Literal), 4u);
}

TEST(CodegenTest, RealLiteralsGoThroughConstantPool) {
  ObjectFile O = compileOne(R"(
module t;
var x: real;
export func main(): int {
  x = 3.25;
  x = x * 3.25;
  return trunc(x);
}
)", /*Schedule=*/false);
  // The pooled constant is a local data symbol referenced via the GAT,
  // deduplicated across the two uses.
  unsigned PoolSyms = 0;
  for (const Symbol &S : O.Symbols)
    PoolSyms += S.Name.find("$const") != std::string::npos;
  EXPECT_EQ(PoolSyms, 1u);
}

TEST(CodegenTest, DivisionLowersToRuntimeCall) {
  ObjectFile O = compileOne(R"(
module t;
export func main(): int { return 100 / 7 + 100 % 7; }
)", /*Schedule=*/false);
  bool RefsDivq = false, RefsRemq = false;
  for (const Symbol &S : O.Symbols) {
    RefsDivq |= S.Name == "rt.divq" && !S.IsDefined;
    RefsRemq |= S.Name == "rt.remq" && !S.IsDefined;
  }
  EXPECT_TRUE(RefsDivq);
  EXPECT_TRUE(RefsRemq);
}

TEST(CodegenTest, ObjectsPassVerification) {
  for (const char *Name : {"alvinn", "li", "spice"}) {
    Result<wl::BuiltWorkload> W = wl::buildWorkload(Name);
    ASSERT_TRUE(bool(W)) << W.message();
    for (const ObjectFile &O : W->linkSet(wl::CompileMode::Each))
      EXPECT_FALSE(bool(O.verify())) << O.ModuleName;
    EXPECT_FALSE(bool(W->UserAll.verify()));
  }
}

TEST(CodegenTest, SerializationRoundTripsRealObjects) {
  Result<wl::BuiltWorkload> W = wl::buildWorkload("compress");
  ASSERT_TRUE(bool(W)) << W.message();
  for (const ObjectFile &O : W->linkSet(wl::CompileMode::Each)) {
    Result<ObjectFile> Back = ObjectFile::deserialize(O.serialize());
    ASSERT_TRUE(bool(Back)) << Back.message();
    EXPECT_EQ(Back->Text, O.Text);
    EXPECT_EQ(Back->Relocs.size(), O.Relocs.size());
    EXPECT_EQ(Back->Gat.size(), O.Gat.size());
  }
}

} // namespace

//===- tests/sched_test.cpp - List scheduler property tests ---------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#include "sched/ListScheduler.h"

#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace om64;
using namespace om64::isa;
using namespace om64::sched;

namespace {

/// Generates a random barrier-free instruction region.
std::vector<Inst> randomRegion(uint64_t Seed, size_t N) {
  DetRandom Rng(Seed);
  std::vector<Inst> Region;
  auto reg = [&]() { return static_cast<uint8_t>(Rng.nextBelow(8) + T0); };
  for (size_t I = 0; I < N; ++I) {
    switch (Rng.nextBelow(6)) {
    case 0:
      Region.push_back(makeMem(Opcode::Ldq, reg(),
                               static_cast<int32_t>(Rng.nextBelow(64)) * 8,
                               SP));
      break;
    case 1:
      Region.push_back(makeMem(Opcode::Stq, reg(),
                               static_cast<int32_t>(Rng.nextBelow(64)) * 8,
                               SP));
      break;
    case 2:
      Region.push_back(makeOp(Opcode::Addq, reg(), reg(), reg()));
      break;
    case 3:
      Region.push_back(makeOpLit(Opcode::Sll, reg(),
                                 static_cast<uint8_t>(Rng.nextBelow(63)),
                                 reg()));
      break;
    case 4:
      Region.push_back(makeOp(Opcode::Mulq, reg(), reg(), reg()));
      break;
    default:
      Region.push_back(makeMem(Opcode::Lda, reg(),
                               static_cast<int32_t>(Rng.nextInRange(-64,
                                                                    64)),
                               reg()));
      break;
    }
  }
  return Region;
}

/// True if instruction J must stay after instruction I.
bool mustFollow(const Inst &A, const Inst &B) {
  // Memory ordering: stores are ordered with all memory operations.
  if ((isStore(A.Op) && (isLoad(B.Op) || isStore(B.Op))) ||
      (isLoad(A.Op) && isStore(B.Op)))
    return true;
  unsigned AW = regUnitWritten(A);
  unsigned BW = regUnitWritten(B);
  unsigned Reads[3];
  if (AW != ~0u) {
    unsigned N = regUnitsRead(B, Reads);
    for (unsigned R = 0; R < N; ++R)
      if (Reads[R] == AW)
        return true; // RAW
    if (BW == AW)
      return true; // WAW
  }
  if (BW != ~0u) {
    unsigned N = regUnitsRead(A, Reads);
    for (unsigned R = 0; R < N; ++R)
      if (Reads[R] == BW)
        return true; // WAR
  }
  return false;
}

class SchedulerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SchedulerPropertyTest, PermutationPreservesDependences) {
  uint64_t Seed = GetParam();
  std::vector<Inst> Region = randomRegion(Seed, 24);
  std::vector<size_t> Perm = scheduleRegion(Region);

  // It is a permutation.
  ASSERT_EQ(Perm.size(), Region.size());
  std::set<size_t> Seen(Perm.begin(), Perm.end());
  EXPECT_EQ(Seen.size(), Region.size());

  // Every dependent pair keeps its order.
  std::vector<size_t> PosOf(Region.size());
  for (size_t P = 0; P < Perm.size(); ++P)
    PosOf[Perm[P]] = P;
  for (size_t I = 0; I < Region.size(); ++I)
    for (size_t J = I + 1; J < Region.size(); ++J)
      if (mustFollow(Region[I], Region[J])) {
        EXPECT_LT(PosOf[I], PosOf[J])
            << "dependence " << I << " -> " << J << " violated (seed "
            << Seed << ")";
      }
}

INSTANTIATE_TEST_SUITE_P(RandomRegions, SchedulerPropertyTest,
                         ::testing::Range<uint64_t>(1, 64));

TEST(SchedulerTest, EmptyAndSingleton) {
  EXPECT_TRUE(scheduleRegion({}).empty());
  std::vector<Inst> One = {Inst::nop()};
  std::vector<size_t> P = scheduleRegion(One);
  ASSERT_EQ(P.size(), 1u);
  EXPECT_EQ(P[0], 0u);
}

TEST(SchedulerTest, HoistsIndependentWorkPastLoadLatency) {
  // load t0; use t0; then three independent adds. A good schedule fills
  // the load shadow with the adds.
  std::vector<Inst> Region = {
      makeMem(Opcode::Ldq, T0, 0, SP),
      makeOpLit(Opcode::Addq, T0, 1, T1), // dependent on the load
      makeOpLit(Opcode::Addq, T2, 1, T2),
      makeOpLit(Opcode::Addq, T3, 1, T3),
      makeOpLit(Opcode::Addq, T4, 1, T4),
  };
  std::vector<size_t> Perm = scheduleRegion(Region);
  std::vector<size_t> PosOf(Region.size());
  for (size_t P = 0; P < Perm.size(); ++P)
    PosOf[Perm[P]] = P;
  // The dependent add should not be scheduled immediately after the load.
  EXPECT_GT(PosOf[1], PosOf[0] + 1);
}

TEST(SchedulerTest, BarriersStayPut) {
  std::vector<Inst> Code = {
      makeOpLit(Opcode::Addq, T0, 1, T0),
      makeMem(Opcode::Ldq, T1, 0, SP),
      makeJump(Opcode::Jsr, RA, PV), // barrier
      makeOpLit(Opcode::Addq, T2, 1, T2),
      makeBranch(Opcode::Br, Zero, 0), // barrier
      makeOpLit(Opcode::Addq, T3, 1, T3),
  };
  std::vector<size_t> Perm = scheduleWithBarriers(Code);
  ASSERT_EQ(Perm.size(), Code.size());
  EXPECT_EQ(Perm[2], 2u) << "JSR moved";
  EXPECT_EQ(Perm[4], 4u) << "BR moved";
  // Nothing from before a barrier may move after it and vice versa.
  for (size_t P = 0; P < 2; ++P)
    EXPECT_LT(Perm[P], 2u);
  EXPECT_EQ(Perm[3], 3u) << "single-instruction region";
}

TEST(SchedulerTest, DispersesPrologueGpPair) {
  // The effect section 4 describes: the GP-set pair gets interleaved with
  // independent frame setup, so it is no longer a clean [0,1] prefix.
  std::vector<Inst> Prologue = {
      makeMem(Opcode::Ldah, GP, 8192, PV),
      makeMem(Opcode::Lda, GP, 28576, GP),
      makeMem(Opcode::Lda, SP, -64, SP),
      makeMem(Opcode::Stq, RA, 0, SP),
      makeMem(Opcode::Stq, S0, 8, SP),
      makeMem(Opcode::Ldq, T0, -32768, GP), // first GAT load, needs GP
  };
  std::vector<size_t> Perm = scheduleRegion(Prologue);
  std::vector<size_t> PosOf(Prologue.size());
  for (size_t P = 0; P < Perm.size(); ++P)
    PosOf[Perm[P]] = P;
  // The pair keeps its relative order and the GAT load follows it...
  EXPECT_LT(PosOf[0], PosOf[1]);
  EXPECT_LT(PosOf[1], PosOf[5]);
  // ...but something independent separates ldah from lda (dual-issue
  // slotting), breaking the clean prefix.
  EXPECT_NE(PosOf[0] + 1, PosOf[1]);
}

TEST(SchedulerTest, CycleEstimateImprovesOrMatches) {
  for (uint64_t Seed = 1; Seed < 32; ++Seed) {
    std::vector<Inst> Region = randomRegion(Seed * 31, 20);
    unsigned Before = estimateRegionCycles(Region);
    std::vector<size_t> Perm = scheduleRegion(Region);
    std::vector<Inst> After;
    After.reserve(Region.size());
    for (size_t P : Perm)
      After.push_back(Region[P]);
    // The estimate respects the dual-issue lower bound, is deterministic,
    // and the scheduled order is not substantially worse than the
    // scheduler's own plan (tie-breaking may differ by a cycle or two).
    EXPECT_GE(Before, (unsigned)(Region.size() + 1) / 2);
    EXPECT_EQ(estimateRegionCycles(Region), Before);
    EXPECT_LE(estimateRegionCycles(After), Before + 2);
  }
}

} // namespace

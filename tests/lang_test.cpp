//===- tests/lang_test.cpp - MLang front-end unit tests -------------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"
#include "lang/Parser.h"
#include "lang/Sema.h"

#include <gtest/gtest.h>

using namespace om64;
using namespace om64::lang;

namespace {

std::vector<Token> lexOk(const std::string &Src) {
  DiagnosticEngine Diags;
  std::vector<Token> Toks = lex("test", Src, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.render();
  return Toks;
}

TEST(LexerTest, KeywordsIdentifiersNumbers) {
  std::vector<Token> T = lexOk("module foo; var x: int = 42;");
  ASSERT_GE(T.size(), 10u);
  EXPECT_EQ(T[0].Kind, Tok::KwModule);
  EXPECT_EQ(T[1].Kind, Tok::Identifier);
  EXPECT_EQ(T[1].Text, "foo");
  EXPECT_EQ(T[3].Kind, Tok::KwVar);
  EXPECT_EQ(T[8].Kind, Tok::IntLiteral);
  EXPECT_EQ(T[8].IntValue, 42);
  EXPECT_EQ(T.back().Kind, Tok::EndOfFile);
}

TEST(LexerTest, RealLiteralsAndExponents) {
  std::vector<Token> T = lexOk("1.5 2.0e3 7 1e2");
  EXPECT_EQ(T[0].Kind, Tok::RealLiteral);
  EXPECT_DOUBLE_EQ(T[0].RealValue, 1.5);
  EXPECT_EQ(T[1].Kind, Tok::RealLiteral);
  EXPECT_DOUBLE_EQ(T[1].RealValue, 2000.0);
  EXPECT_EQ(T[2].Kind, Tok::IntLiteral);
  EXPECT_EQ(T[3].Kind, Tok::RealLiteral);
  EXPECT_DOUBLE_EQ(T[3].RealValue, 100.0);
}

TEST(LexerTest, OperatorsAndComments) {
  std::vector<Token> T =
      lexOk("== != <= >= << >> & | ^ # comment to end\n<");
  EXPECT_EQ(T[0].Kind, Tok::EqEq);
  EXPECT_EQ(T[1].Kind, Tok::NotEq);
  EXPECT_EQ(T[2].Kind, Tok::LessEq);
  EXPECT_EQ(T[3].Kind, Tok::GreaterEq);
  EXPECT_EQ(T[4].Kind, Tok::Shl);
  EXPECT_EQ(T[5].Kind, Tok::Shr);
  EXPECT_EQ(T[6].Kind, Tok::Amp);
  EXPECT_EQ(T[7].Kind, Tok::BitOr);
  EXPECT_EQ(T[8].Kind, Tok::BitXor);
  EXPECT_EQ(T[9].Kind, Tok::Less);
}

TEST(LexerTest, BadCharacterIsError) {
  DiagnosticEngine Diags;
  lex("test", "var $x;", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LexerTest, TracksLineAndColumn) {
  std::vector<Token> T = lexOk("a\n  b");
  EXPECT_EQ(T[0].Loc.Line, 1u);
  EXPECT_EQ(T[0].Loc.Column, 1u);
  EXPECT_EQ(T[1].Loc.Line, 2u);
  EXPECT_EQ(T[1].Loc.Column, 3u);
}

std::optional<Module> parseOk(const std::string &Src) {
  DiagnosticEngine Diags;
  std::optional<Module> M = parseModule("test", Src, Diags);
  EXPECT_TRUE(M.has_value()) << Diags.render();
  return M;
}

void expectParseError(const std::string &Src, const std::string &Fragment) {
  DiagnosticEngine Diags;
  std::optional<Module> M = parseModule("test", Src, Diags);
  EXPECT_FALSE(M.has_value()) << "expected parse failure";
  EXPECT_NE(Diags.render().find(Fragment), std::string::npos)
      << "diagnostics were: " << Diags.render();
}

TEST(ParserTest, ModuleStructure) {
  auto M = parseOk(R"(
module demo;
import io;
import rt;
export var total: int;
var table: real[64];
func helper(a: int, b: real): real {
  var x: real;
  x = b;
  return x;
}
export func main(): int {
  return 0;
}
)");
  ASSERT_TRUE(M.has_value());
  EXPECT_EQ(M->Name, "demo");
  ASSERT_EQ(M->Imports.size(), 2u);
  EXPECT_EQ(M->Imports[1], "rt");
  ASSERT_EQ(M->Globals.size(), 2u);
  EXPECT_TRUE(M->Globals[0].Exported);
  EXPECT_EQ(M->Globals[1].Ty.Kind, TypeKind::RealArray);
  EXPECT_EQ(M->Globals[1].Ty.ArraySize, 64u);
  ASSERT_EQ(M->Functions.size(), 2u);
  EXPECT_FALSE(M->Functions[0].Exported);
  ASSERT_EQ(M->Functions[0].Params.size(), 2u);
  EXPECT_EQ(M->Functions[0].ReturnType.Kind, TypeKind::Real);
  EXPECT_EQ(M->Functions[1].ReturnType.Kind, TypeKind::Int);
}

TEST(ParserTest, PrecedenceShapesTree) {
  auto M = parseOk(R"(
module t;
export func main(): int {
  var x: int;
  x = 1 + 2 * 3 < 7 and 1 | 2;
  return x;
}
)");
  ASSERT_TRUE(M.has_value());
  const Stmt &S = *M->Functions[0].Body[0];
  ASSERT_EQ(S.K, Stmt::Kind::Assign);
  // Top node is 'and'.
  EXPECT_EQ(S.Value->Op, Tok::KwAnd);
  // Its left child is the comparison.
  EXPECT_EQ(S.Value->Args[0]->Op, Tok::Less);
  // '*' binds tighter than '+'.
  const Expr &Sum = *S.Value->Args[0]->Args[0];
  EXPECT_EQ(Sum.Op, Tok::Plus);
  EXPECT_EQ(Sum.Args[1]->Op, Tok::Star);
}

TEST(ParserTest, ElseIfChains) {
  auto M = parseOk(R"(
module t;
export func f(x: int): int {
  if (x == 0) { return 1; }
  else if (x == 1) { return 2; }
  else { return 3; }
}
)");
  ASSERT_TRUE(M.has_value());
  const Stmt &If = *M->Functions[0].Body[0];
  ASSERT_EQ(If.K, Stmt::Kind::If);
  ASSERT_EQ(If.ElseBody.size(), 1u);
  EXPECT_EQ(If.ElseBody[0]->K, Stmt::Kind::If);
  EXPECT_EQ(If.ElseBody[0]->ElseBody.size(), 1u);
}

TEST(ParserTest, Errors) {
  expectParseError("func f() {}", "'module'");
  expectParseError("module t; var x int;", "':'");
  expectParseError("module t; func f() { var x: int[4]; }",
                   "module-level");
  expectParseError("module t; func f() { 1 + 2; }", "call expressions");
  expectParseError("module t; func f() { x = ; }", "expected an expression");
  expectParseError("module t; func f() { if x { } }", "'('");
  expectParseError("module t; var a: real[0];", "array size");
}

TEST(ParserTest, DeclsOnlyAtTop) {
  expectParseError(R"(
module t;
func f() {
  f();
  var late: int;
}
)", "expected");
}

//===----------------------------------------------------------------------===//
// Sema.
//===----------------------------------------------------------------------===//

Program makeProgram(std::vector<std::pair<std::string, std::string>> Mods) {
  Program P;
  DiagnosticEngine Diags;
  for (auto &[Name, Src] : Mods) {
    std::optional<Module> M = parseModule(Name, Src, Diags);
    EXPECT_TRUE(M.has_value()) << Diags.render();
    if (M)
      P.Modules.push_back(std::move(*M));
  }
  return P;
}

void expectSemaError(std::vector<std::pair<std::string, std::string>> Mods,
                     const std::string &Fragment) {
  Program P = makeProgram(std::move(Mods));
  DiagnosticEngine Diags;
  EXPECT_FALSE(analyzeProgram(P, Diags)) << "expected sema failure";
  EXPECT_NE(Diags.render().find(Fragment), std::string::npos)
      << "diagnostics were: " << Diags.render();
}

TEST(SemaTest, ResolvesLocalsParamsGlobalsImports) {
  Program P = makeProgram({{"lib", R"(
module lib;
export var shared: int;
export func get(): int { return shared; }
)"},
                           {"use", R"(
module use;
import lib;
var mine: real;
export func main(): int {
  var x: int;
  x = lib.get() + lib.shared;
  mine = 1.5;
  return x;
}
)"}});
  DiagnosticEngine Diags;
  ASSERT_TRUE(analyzeProgram(P, Diags)) << Diags.render();
  ASSERT_TRUE(checkEntryPoint(P, Diags)) << Diags.render();
  // The call resolved cross-module.
  const Function &Main = P.Modules[1].Functions[0];
  const Expr &Assign1 = *Main.Body[0]->Value;
  EXPECT_EQ(Assign1.Args[0]->Ref, RefKind::Function);
  EXPECT_EQ(Assign1.Args[0]->TargetModule, "lib");
  EXPECT_EQ(Assign1.Args[1]->Ref, RefKind::Global);
}

TEST(SemaTest, TypeErrors) {
  expectSemaError({{"t", R"(
module t;
export func main(): int {
  var x: int;
  x = 1.5;
  return 0;
}
)"}}, "cannot assign real to int");

  expectSemaError({{"t", R"(
module t;
export func main(): int {
  return 1 + 2.0;
}
)"}}, "type mismatch");

  expectSemaError({{"t", R"(
module t;
export func main(): int {
  var r: real;
  if (r) { }
  return 0;
}
)"}}, "condition must be int");

  expectSemaError({{"t", R"(
module t;
export func main(): int {
  return 1.0 % 2.0;
}
)"}}, "requires int operands");
}

TEST(SemaTest, NameErrors) {
  expectSemaError({{"t", R"(
module t;
export func main(): int { return nosuch; }
)"}}, "undeclared variable");

  expectSemaError({{"t", R"(
module t;
export func main(): int { return other.f(); }
)"}}, "not imported");

  expectSemaError({{"a", "module a;\nvar hidden: int;\nexport func f(): int { return hidden; }"},
                   {"t", R"(
module t;
import a;
export func main(): int { return a.hidden; }
)"}}, "does not export");

  expectSemaError({{"t", R"(
module t;
var x: int;
var x: int;
export func main(): int { return 0; }
)"}}, "duplicate global");
}

TEST(SemaTest, CallChecking) {
  expectSemaError({{"t", R"(
module t;
func f(a: int): int { return a; }
export func main(): int { return f(1, 2); }
)"}}, "passes 2 arguments");

  expectSemaError({{"t", R"(
module t;
func f(a: real): real { return a; }
export func main(): int { return f(1) > 0; }
)"}}, "argument 1");

  expectSemaError({{"t", R"(
module t;
export func main(): int {
  var x: int;
  x = 3;
  return x(1);
}
)"}}, "not callable");
}

TEST(SemaTest, FuncPtrRules) {
  Program P = makeProgram({{"t", R"(
module t;
var handler: funcptr;
export func callee(a: int, b: int): int { return a + b; }
export func main(): int {
  var f: funcptr;
  f = &callee;
  handler = f;
  return f(1, 2) + handler(3, 4);
}
)"}});
  DiagnosticEngine Diags;
  ASSERT_TRUE(analyzeProgram(P, Diags)) << Diags.render();
  const Function &Main = P.Modules[0].Functions[1];
  const Expr &Ret = *Main.Body[2]->Value;
  EXPECT_TRUE(Ret.Args[0]->IsIndirectCall);
  EXPECT_TRUE(Ret.Args[1]->IsIndirectCall);
  EXPECT_EQ(Ret.Args[1]->Ref, RefKind::Global);
}

TEST(SemaTest, EntryPointChecks) {
  {
    Program P = makeProgram({{"t", "module t;\nfunc main(): int { return 0; }"}});
    DiagnosticEngine Diags;
    ASSERT_TRUE(analyzeProgram(P, Diags));
    EXPECT_FALSE(checkEntryPoint(P, Diags)) << "unexported main accepted";
  }
  {
    Program P = makeProgram({{"t", "module t;\nexport func go(): int { return 0; }"}});
    DiagnosticEngine Diags;
    ASSERT_TRUE(analyzeProgram(P, Diags));
    EXPECT_FALSE(checkEntryPoint(P, Diags));
    EXPECT_TRUE(checkEntryPoint(P, Diags, /*RequireMain=*/false));
  }
}

TEST(SemaTest, BuiltinsResolveAndCheck) {
  EXPECT_EQ(lookupBuiltin("trunc"), Builtin::Trunc);
  EXPECT_EQ(lookupBuiltin("pal_cycles"), Builtin::PalCycles);
  EXPECT_EQ(lookupBuiltin("no_such"), Builtin::None);

  expectSemaError({{"t", R"(
module t;
export func main(): int { return trunc(3); }
)"}}, "wrong type");
}

} // namespace

//===- tests/bsr_relax_test.cpp - BSR relaxation fixpoint (tier 1) --------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fast tests for the worst-case-then-shrink BSR relaxation (Emit.cpp) and
/// its supporting pieces:
///
///   * checkedDecrement: the saturating stats decrement can never wrap a
///     counter to 2^64-1,
///   * verifyBsrRanges: the post-assembly audit accepts a well-formed
///     image and rejects hand-corrupted BSRs (out of text / between
///     procedures),
///   * relaxation stats: near calls are re-admitted (BsrRetainedByRelax),
///     far calls revert (BsrFallbackJsrs), and the fixpoint round count is
///     populated,
///   * a profile-guided hot-cold link with Verify on passes the audit,
///   * linkConfigKey covers the relaxation inputs the daemon wire format
///     omits (HotColdLayout, the profile bytes).
///
/// The mega-scale retention and boundary-pinning tests live in
/// bsr_relax_slow_test.cpp.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "om/Incremental.h"
#include "om/OmImpl.h"
#include "om/Verify.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace om64;
using namespace om64::isa;
using namespace om64::obj;
using namespace om64::om;
using namespace om64::test;

namespace {

//===----------------------------------------------------------------------===//
// checkedDecrement: underflow-proof stats bookkeeping.
//===----------------------------------------------------------------------===//

TEST(BsrRelaxTest, CheckedDecrementNeverUnderflows) {
  uint64_t C = 2;
  EXPECT_TRUE(checkedDecrement(C));
  EXPECT_EQ(C, 1u);
  EXPECT_TRUE(checkedDecrement(C));
  EXPECT_EQ(C, 0u);
  // The failure mode this guards: a revert path decrementing a counter the
  // matching increment never ran for. The counter must clamp, not wrap.
  EXPECT_FALSE(checkedDecrement(C));
  EXPECT_EQ(C, 0u);
  EXPECT_FALSE(checkedDecrement(C));
  EXPECT_EQ(C, 0u);
}

//===----------------------------------------------------------------------===//
// verifyBsrRanges: the post-assembly audit.
//===----------------------------------------------------------------------===//

/// Builds a minimal two-procedure image: p at +0 (bsr into q, then ret)
/// and q at +16 (ret). Every BSR is well-formed.
Image makeAuditImage() {
  Image Img;
  auto addWord = [&Img](uint32_t W) {
    for (unsigned B = 0; B < 4; ++B)
      Img.Text.push_back(static_cast<uint8_t>(W >> (8 * B)));
  };
  // p: 0: bsr ra, q (disp (16-0-4)/4 = 3); 4: ret; pad to 16.
  addWord(encode(makeBranch(Opcode::Bsr, RA, 3)));
  addWord(encode(makeJump(Opcode::Ret, Zero, RA)));
  addWord(encode(makeOp(Opcode::Addq, T0, T0, T0)));
  addWord(encode(makeOp(Opcode::Addq, T0, T0, T0)));
  // q: 16: ret.
  addWord(encode(makeJump(Opcode::Ret, Zero, RA)));

  ImageProc P;
  P.Name = "m.p";
  P.Entry = Img.TextBase;
  P.Size = 16;
  ImageProc Q;
  Q.Name = "m.q";
  Q.Entry = Img.TextBase + 16;
  Q.Size = 4;
  Img.Procs = {P, Q};
  Img.Entry = P.Entry;
  return Img;
}

TEST(BsrRelaxTest, RangeAuditAcceptsWellFormedImage) {
  Image Img = makeAuditImage();
  Error E = verifyBsrRanges(Img);
  EXPECT_FALSE(bool(E)) << E.message();
}

TEST(BsrRelaxTest, RangeAuditRejectsBsrOutsideText) {
  Image Img = makeAuditImage();
  // Retarget the BSR way past the end of text.
  uint32_t W = encode(makeBranch(Opcode::Bsr, RA, 100000));
  for (unsigned B = 0; B < 4; ++B)
    Img.Text[B] = static_cast<uint8_t>(W >> (8 * B));
  Error E = verifyBsrRanges(Img);
  ASSERT_TRUE(bool(E));
  EXPECT_NE(E.message().find("m.p"), std::string::npos) << E.message();
  EXPECT_NE(E.message().find("outside the text segment"), std::string::npos)
      << E.message();
}

TEST(BsrRelaxTest, RangeAuditRejectsBsrBetweenProcedures) {
  Image Img = makeAuditImage();
  // Target text offset 12: inside the text segment and inside p's
  // alignment padding region? No — p's span is [0,16), so offset 12 is
  // still inside p. Use a landing past q's end instead: extend text with
  // unowned padding and aim there.
  uint32_t Nop = encode(makeOp(Opcode::Addq, T0, T0, T0));
  for (unsigned I = 0; I < 4; ++I)
    for (unsigned B = 0; B < 4; ++B)
      Img.Text.push_back(static_cast<uint8_t>(Nop >> (8 * B)));
  // bsr at 0 targeting offset 24 = 4+disp*4 -> disp 5: in text, past q.
  uint32_t W = encode(makeBranch(Opcode::Bsr, RA, 5));
  for (unsigned B = 0; B < 4; ++B)
    Img.Text[B] = static_cast<uint8_t>(W >> (8 * B));
  Error E = verifyBsrRanges(Img);
  ASSERT_TRUE(bool(E));
  EXPECT_NE(E.message().find("not inside any procedure"), std::string::npos)
      << E.message();
}

//===----------------------------------------------------------------------===//
// Relaxation stats on real links.
//===----------------------------------------------------------------------===//

TEST(BsrRelaxTest, RetainedEqualsSurvivingConversions) {
  // Every surviving conversion was re-admitted by the fixpoint, so the two
  // counters must agree — on every workload, at Simple and Full.
  for (const char *Name : {"compress", "eqntott"}) {
    Result<wl::BuiltWorkload> W = wl::buildWorkload(Name);
    ASSERT_TRUE(bool(W)) << W.message();
    for (OmLevel Level : {OmLevel::Simple, OmLevel::Full}) {
      OmOptions Opts;
      Opts.Level = Level;
      Opts.Verify = true; // post-assembly audit runs too
      Result<OmResult> R = wl::linkWithOm(*W, wl::CompileMode::Each, Opts);
      ASSERT_TRUE(bool(R)) << Name << ": " << R.message();
      EXPECT_GT(R->Stats.JsrConvertedToBsr, 0u) << Name;
      EXPECT_EQ(R->Stats.BsrRetainedByRelax, R->Stats.JsrConvertedToBsr)
          << Name;
      EXPECT_EQ(R->Stats.BsrFallbackJsrs, 0u) << Name;
      EXPECT_GE(R->Stats.BsrRelaxRounds, 1u) << Name;
    }
  }
}

TEST(BsrRelaxTest, ProfileGuidedLayoutLinksUnderAudit) {
  // A hot-cold link decides BSR reach against the *reordered* procedure
  // order; the post-assembly audit must still come back green.
  Result<wl::BuiltWorkload> W = wl::buildWorkload("espresso");
  ASSERT_TRUE(bool(W)) << W.message();

  OmOptions Base;
  Base.Level = OmLevel::Full;
  Base.Reschedule = true;
  Base.AlignLoopTargets = true;
  Result<OmResult> BaseLink = wl::linkWithOm(*W, wl::CompileMode::Each, Base);
  ASSERT_TRUE(bool(BaseLink)) << BaseLink.message();

  sim::SimConfig ProfCfg;
  ProfCfg.Profile = true;
  Result<sim::SimResult> ProfRun = sim::run(BaseLink->Image, ProfCfg);
  ASSERT_TRUE(bool(ProfRun)) << ProfRun.message();

  OmOptions Lay = Base;
  Lay.HotColdLayout = true;
  Lay.Profile = ProfRun->Profile;
  Lay.Verify = true;
  Result<OmResult> LayLink = wl::linkWithOm(*W, wl::CompileMode::Each, Lay);
  ASSERT_TRUE(bool(LayLink)) << LayLink.message();
  EXPECT_EQ(LayLink->Stats.BsrRetainedByRelax,
            LayLink->Stats.JsrConvertedToBsr);
  EXPECT_GE(LayLink->Stats.BsrRelaxRounds, 1u);

  // Behaviour unchanged by the reorder.
  Result<sim::SimResult> LayRun = sim::run(LayLink->Image);
  ASSERT_TRUE(bool(LayRun)) << LayRun.message();
  EXPECT_EQ(LayRun->ExitCode, ProfRun->ExitCode);
  EXPECT_EQ(LayRun->Output, ProfRun->Output);
}

//===----------------------------------------------------------------------===//
// linkConfigKey: warm-state keys cover the relaxation inputs.
//===----------------------------------------------------------------------===//

TEST(BsrRelaxTest, LinkConfigKeyCoversRelaxationInputs) {
  OmOptions A;
  A.Level = OmLevel::Full;
  OmOptions B = A;
  EXPECT_EQ(linkConfigKey(A), linkConfigKey(B));

  // The daemon wire format omits these three; the key must not.
  B.HotColdLayout = true;
  EXPECT_NE(linkConfigKey(A), linkConfigKey(B));

  OmOptions C = A;
  prof::ProcProfile PP;
  PP.Name = "m.p";
  PP.InstsExecuted = 42;
  C.Profile.Procs.push_back(PP);
  EXPECT_NE(linkConfigKey(A), linkConfigKey(C));

  // Two different profiles must key differently even with layout on.
  OmOptions D = C;
  D.Profile.Procs[0].InstsExecuted = 43;
  EXPECT_NE(linkConfigKey(C), linkConfigKey(D));

  OmOptions E = A;
  E.InstrumentProcedureCounts = true;
  EXPECT_NE(linkConfigKey(A), linkConfigKey(E));

  // Lint options change the diagnostics a relink reports; a warm state
  // must never be shared across a --lint flip.
  OmOptions F = A;
  F.Lint = true;
  EXPECT_NE(linkConfigKey(A), linkConfigKey(F));
  OmOptions G = F;
  G.LintExplain = true;
  EXPECT_NE(linkConfigKey(F), linkConfigKey(G));
}

} // namespace

//===- tests/interp_test.cpp - Reference interpreter unit tests -----------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "lang/Interp.h"

#include <gtest/gtest.h>

using namespace om64;
using namespace om64::test;

namespace {

lang::InterpResult interpretSource(const std::string &Source,
                                   uint64_t MaxSteps = 50000000) {
  lang::Program P = parseProgram({{"t", Source}});
  DiagnosticEngine Diags;
  EXPECT_TRUE(lang::checkEntryPoint(P, Diags)) << Diags.render();
  return lang::interpret(P, MaxSteps);
}

TEST(InterpTest, BasicProgram) {
  lang::InterpResult R = interpretSource(R"(
module t;
import io;
var g: int = 5;
export func main(): int {
  var i: int;
  i = 0;
  while (i < 4) {
    g = g * 2;
    i = i + 1;
  }
  io.print_int(g);
  return g & 15;
}
)");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, "80");
  EXPECT_EQ(R.ExitCode, 80 & 15);
}

TEST(InterpTest, OutOfBoundsIndexIsAnError) {
  lang::InterpResult R = interpretSource(R"(
module t;
var a: int[8];
export func main(): int {
  a[9] = 1;
  return 0;
}
)");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("out of bounds"), std::string::npos);
}

TEST(InterpTest, NegativeIndexIsAnError) {
  lang::InterpResult R = interpretSource(R"(
module t;
var a: int[8];
export func main(): int {
  return a[-1];
}
)");
  EXPECT_FALSE(R.Ok);
}

TEST(InterpTest, NullFuncPtrIsAnError) {
  lang::InterpResult R = interpretSource(R"(
module t;
var f: funcptr;
export func main(): int {
  return f(1);
}
)");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("funcptr"), std::string::npos);
}

TEST(InterpTest, StepBudgetStopsRunaways) {
  lang::InterpResult R = interpretSource(R"(
module t;
export func main(): int {
  while (1) { }
  return 0;
}
)", /*MaxSteps=*/10000);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("budget"), std::string::npos);
}

TEST(InterpTest, DepthLimitStopsInfiniteRecursion) {
  lang::InterpResult R = interpretSource(R"(
module t;
export func spin(x: int): int { return spin(x + 1); }
export func main(): int { return spin(0); }
)");
  EXPECT_FALSE(R.Ok);
}

TEST(InterpTest, PalHaltStopsWithCode) {
  lang::InterpResult R = interpretSource(R"(
module t;
import io;
export func main(): int {
  io.print_int(1);
  pal_halt(9);
  io.print_int(2);
  return 0;
}
)");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, "1");
  EXPECT_EQ(R.ExitCode, 9);
}

TEST(InterpTest, HaltInsideCalleeUnwindsEverything) {
  lang::InterpResult R = interpretSource(R"(
module t;
import io;
func deep(n: int): int {
  if (n == 0) {
    pal_halt(3);
  }
  return deep(n - 1);
}
export func main(): int {
  deep(10);
  io.print_int(999);
  return 0;
}
)");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, "");
  EXPECT_EQ(R.ExitCode, 3);
}

TEST(InterpTest, WrappingArithmeticMatchesSimulator) {
  // INT64 wraparound through the whole pipeline vs the interpreter.
  const char *Source = R"(
module t;
import io;
export func main(): int {
  var big: int;
  big = 6148914691236517205;   # 0x5555...5555
  io.print_int(big * 3);       # wraps
  io.print_char(32);
  io.print_int(big + big + big);
  io.print_char(32);
  io.print_int(-(-9223372036854775807 - 1));  # -INT64_MIN wraps to itself
  return 0;
}
)";
  lang::Program P = parseProgram({{"t", Source}});
  lang::InterpResult Oracle = lang::interpret(P);
  ASSERT_TRUE(Oracle.Ok) << Oracle.Error;
  EXPECT_EQ(runSourceAllVariants(Source), Oracle.Output);
}

TEST(InterpTest, NegativeZeroHandling) {
  // -(+0.0) is +0.0 in both worlds (SUBT fzero, x), while a folded
  // negative literal keeps its sign.
  const char *Source = R"(
module t;
import io;
var z: real;
export func main(): int {
  z = 0.0;
  io.print_real(-z);
  io.print_char(32);
  io.print_real(-1.0 * 0.0);
  return 0;
}
)";
  lang::Program P = parseProgram({{"t", Source}});
  lang::InterpResult Oracle = lang::interpret(P);
  ASSERT_TRUE(Oracle.Ok) << Oracle.Error;
  EXPECT_EQ(runSourceAllVariants(Source), Oracle.Output);
  EXPECT_EQ(Oracle.Output, "0 -0");
}

TEST(InterpTest, NanAndInfinityFlow) {
  const char *Source = R"(
module t;
import io;
var z: real;
export func main(): int {
  z = 0.0;
  io.print_real(1.0 / z);       # inf
  io.print_char(32);
  io.print_real(z / z);         # nan
  io.print_char(32);
  io.print_int(z / z == z / z); # nan != nan
  io.print_char(32);
  io.print_int(trunc(1.0 / z)); # clamped
  return 0;
}
)";
  lang::Program P = parseProgram({{"t", Source}});
  lang::InterpResult Oracle = lang::interpret(P);
  ASSERT_TRUE(Oracle.Ok) << Oracle.Error;
  EXPECT_EQ(runSourceAllVariants(Source), Oracle.Output);
}

TEST(InterpTest, FuncPtrDispatchMatches) {
  const char *Source = R"(
module t;
import io;
var ops: funcptr;
export func inc(a: int, b: int): int { return a + b + 1; }
export func main(): int {
  ops = &inc;
  io.print_int(ops(20, 21));
  return 0;
}
)";
  lang::Program P = parseProgram({{"t", Source}});
  lang::InterpResult Oracle = lang::interpret(P);
  ASSERT_TRUE(Oracle.Ok) << Oracle.Error;
  EXPECT_EQ(Oracle.Output, "42");
  EXPECT_EQ(runSourceAllVariants(Source), "42");
}

TEST(InterpTest, EmulatedDivisionEdgeCases) {
  EXPECT_EQ(lang::emulatedDivq(7, 0), 0);
  EXPECT_EQ(lang::emulatedRemq(7, 0), 7) << "remq(a,0) == a by definition";
  EXPECT_EQ(lang::emulatedDivq(INT64_MAX, 1), INT64_MAX);
  EXPECT_EQ(lang::emulatedDivq(INT64_MAX, INT64_MAX), 1);
  EXPECT_EQ(lang::emulatedDivq(0, 12345), 0);
}

} // namespace

//===- tests/support_test.cpp - Support-library unit tests ----------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/ByteStream.h"
#include "support/ContentHash.h"
#include "support/Diagnostics.h"
#include "support/FileIO.h"
#include "support/Format.h"
#include "support/Profile.h"
#include "support/Random.h"
#include "support/Result.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <numeric>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace om64;

namespace {

TEST(FormatTest, Basic) {
  EXPECT_EQ(formatString("%d + %d = %s", 2, 3, "five"), "2 + 3 = five");
  EXPECT_EQ(formatString("empty"), "empty");
  EXPECT_EQ(formatHex64(0x120000040ull), "0x0000000120000040");
}

TEST(FormatTest, Padding) {
  EXPECT_EQ(padRight("ab", 5), "ab   ");
  EXPECT_EQ(padLeft("ab", 5), "   ab");
  EXPECT_EQ(padRight("abcdef", 3), "abcdef");
}

TEST(FormatTest, Split) {
  auto F = splitString("a,b,,c", ',');
  ASSERT_EQ(F.size(), 4u);
  EXPECT_EQ(F[0], "a");
  EXPECT_EQ(F[2], "");
  EXPECT_EQ(F[3], "c");
  EXPECT_EQ(splitString("", ',').size(), 1u);
}

TEST(ByteStreamTest, ScalarRoundTrip) {
  ByteWriter W;
  W.writeU8(0xAB);
  W.writeU16(0xBEEF);
  W.writeU32(0xDEADBEEF);
  W.writeU64(0x0123456789ABCDEFull);
  W.writeI64(-42);
  W.writeString("hello");
  W.writeBlob({1, 2, 3});

  ByteReader R(W.bytes());
  EXPECT_EQ(R.readU8(), 0xAB);
  EXPECT_EQ(R.readU16(), 0xBEEF);
  EXPECT_EQ(R.readU32(), 0xDEADBEEFu);
  EXPECT_EQ(R.readU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(R.readI64(), -42);
  EXPECT_EQ(R.readString(), "hello");
  EXPECT_EQ(R.readBlob(), (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_TRUE(R.atEnd());
  EXPECT_FALSE(R.hadError());
}

TEST(ByteStreamTest, TruncationSetsError) {
  ByteWriter W;
  W.writeU32(7);
  ByteReader R(W.bytes());
  R.readU64();
  EXPECT_TRUE(R.hadError());
  // Sticky: further reads keep failing and return zero.
  EXPECT_EQ(R.readU8(), 0);
  EXPECT_TRUE(R.hadError());
}

TEST(ByteStreamTest, PatchU32) {
  ByteWriter W;
  W.writeU32(0);
  W.writeU32(5);
  W.patchU32At(0, 0xCAFEBABE);
  ByteReader R(W.bytes());
  EXPECT_EQ(R.readU32(), 0xCAFEBABEu);
  EXPECT_EQ(R.readU32(), 5u);
}

TEST(RandomTest, DeterministicAcrossInstances) {
  DetRandom A(12345), B(12345);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RandomTest, KnownSequence) {
  // Pin the SplitMix64 outputs so workload generation can never silently
  // change.
  DetRandom R(1);
  EXPECT_EQ(R.next(), 0x910A2DEC89025CC1ull);
  EXPECT_EQ(R.next(), 0xBEEB8DA1658EEC67ull);
}

TEST(RandomTest, RangesRespectBounds) {
  DetRandom R(7);
  for (int I = 0; I < 1000; ++I) {
    EXPECT_LT(R.nextBelow(10), 10u);
    int64_t V = R.nextInRange(-5, 5);
    EXPECT_GE(V, -5);
    EXPECT_LE(V, 5);
    double U = R.nextUnit();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
  }
}

TEST(ResultTest, SuccessAndFailure) {
  Result<int> Ok(42);
  ASSERT_TRUE(bool(Ok));
  EXPECT_EQ(*Ok, 42);
  Result<int> Bad = Result<int>::failure("nope");
  ASSERT_FALSE(bool(Bad));
  EXPECT_EQ(Bad.message(), "nope");
  Error E = Bad.takeError();
  EXPECT_TRUE(bool(E));
  EXPECT_EQ(E.message(), "nope");
  EXPECT_FALSE(bool(Ok.takeError()));
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.threadCount(), 4u);
  constexpr size_t N = 10000;
  std::vector<std::atomic<unsigned>> Hits(N);
  Pool.parallelFor(N, [&](size_t I) { Hits[I].fetch_add(1); });
  for (size_t I = 0; I < N; ++I)
    ASSERT_EQ(Hits[I].load(), 1u) << "index " << I;
}

TEST(ThreadPoolTest, PerIndexSlotsReduceDeterministically) {
  // The discipline every OM stage relies on: bodies write only their own
  // slot, the caller reduces in index order.
  ThreadPool Pool(4);
  constexpr size_t N = 257;
  std::vector<uint64_t> Slot(N, 0);
  Pool.parallelFor(N, [&](size_t I) { Slot[I] = I * I; });
  uint64_t Sum = std::accumulate(Slot.begin(), Slot.end(), uint64_t(0));
  EXPECT_EQ(Sum, uint64_t(N - 1) * N * (2 * N - 1) / 6);
}

TEST(ThreadPoolTest, SerialPoolRunsInline) {
  ThreadPool Pool(1);
  EXPECT_EQ(Pool.threadCount(), 1u);
  std::thread::id Caller = std::this_thread::get_id();
  size_t Count = 0;
  Pool.parallelFor(100, [&](size_t) {
    // Runs on the calling thread: plain increment is race-free.
    EXPECT_EQ(std::this_thread::get_id(), Caller);
    ++Count;
  });
  EXPECT_EQ(Count, 100u);
}

TEST(ThreadPoolTest, EmptyAndSingleRanges) {
  ThreadPool Pool(3);
  bool Ran = false;
  Pool.parallelFor(0, [&](size_t) { Ran = true; });
  EXPECT_FALSE(Ran);
  // A one-element range runs inline on the caller even with workers.
  std::thread::id Caller = std::this_thread::get_id();
  Pool.parallelFor(1, [&](size_t I) {
    EXPECT_EQ(I, 0u);
    EXPECT_EQ(std::this_thread::get_id(), Caller);
    Ran = true;
  });
  EXPECT_TRUE(Ran);
}

TEST(ThreadPoolTest, ReusableAcrossGenerations) {
  ThreadPool Pool(2);
  for (unsigned Round = 0; Round < 50; ++Round) {
    std::atomic<unsigned> Count{0};
    Pool.parallelFor(Round, [&](size_t) { Count.fetch_add(1); });
    EXPECT_EQ(Count.load(), Round);
  }
}

TEST(ThreadPoolTest, DefaultConcurrencyIsPositive) {
  EXPECT_GE(ThreadPool::defaultConcurrency(), 1u);
  ThreadPool Pool(0); // 0 = hardware concurrency
  EXPECT_GE(Pool.threadCount(), 1u);
}

TEST(DiagnosticsTest, AppendMergesEnginesInOrder) {
  DiagnosticEngine A;
  A.error("one", {1, 1}, "first");
  DiagnosticEngine B;
  B.warning("two", {2, 2}, "second");
  B.error("two", {3, 3}, "third");
  A.append(std::move(B));
  EXPECT_EQ(A.errorCount(), 2u);
  std::string Text = A.render();
  size_t First = Text.find("first");
  size_t Second = Text.find("second");
  size_t Third = Text.find("third");
  ASSERT_NE(First, std::string::npos);
  ASSERT_NE(Second, std::string::npos);
  ASSERT_NE(Third, std::string::npos);
  EXPECT_LT(First, Second);
  EXPECT_LT(Second, Third);
}

TEST(DiagnosticsTest, RenderingAndCounts) {
  DiagnosticEngine D;
  EXPECT_FALSE(D.hasErrors());
  D.warning("mod", {3, 7}, "looks odd");
  EXPECT_FALSE(D.hasErrors());
  D.error("mod", {4, 1}, "bad thing");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.errorCount(), 1u);
  std::string Text = D.render();
  EXPECT_NE(Text.find("mod:3:7: warning: looks odd"), std::string::npos);
  EXPECT_NE(Text.find("mod:4:1: error: bad thing"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Execution-profile (AAXP) round trip and rejection paths
//===----------------------------------------------------------------------===//

prof::Profile makeSampleProfile() {
  prof::Profile P;
  prof::ProcProfile Main;
  Main.Name = "t.main";
  Main.InstsExecuted = 1234;
  Main.Branches = {{100, 40}, {7, 7}, {0, 0}};
  prof::ProcProfile Helper;
  Helper.Name = "t.helper";
  Helper.InstsExecuted = 56;
  Helper.Branches = {{3, 1}};
  P.Procs = {Main, Helper};
  P.Edges = {{0, 1, 9}, {1, 1, 2}};
  return P;
}

TEST(ProfileTest, SerializeDeserializeRoundTrip) {
  prof::Profile P = makeSampleProfile();
  Result<prof::Profile> R = prof::Profile::deserialize(P.serialize());
  ASSERT_TRUE(bool(R)) << R.message();
  ASSERT_EQ(R->Procs.size(), 2u);
  EXPECT_EQ(R->Procs[0].Name, "t.main");
  EXPECT_EQ(R->Procs[0].InstsExecuted, 1234u);
  ASSERT_EQ(R->Procs[0].Branches.size(), 3u);
  EXPECT_EQ(R->Procs[0].Branches[0].Executed, 100u);
  EXPECT_EQ(R->Procs[0].Branches[0].Taken, 40u);
  EXPECT_EQ(R->Procs[1].Name, "t.helper");
  ASSERT_EQ(R->Edges.size(), 2u);
  EXPECT_EQ(R->Edges[0].Caller, 0u);
  EXPECT_EQ(R->Edges[0].Callee, 1u);
  EXPECT_EQ(R->Edges[0].Count, 9u);
  EXPECT_FALSE(R->empty());
  EXPECT_EQ(R->totalInstructions(), 1290u);
}

TEST(ProfileTest, EmptyProfileRoundTripsAndReportsEmpty) {
  prof::Profile P;
  EXPECT_TRUE(P.empty());
  Result<prof::Profile> R = prof::Profile::deserialize(P.serialize());
  ASSERT_TRUE(bool(R)) << R.message();
  EXPECT_TRUE(R->empty());
  EXPECT_EQ(R->totalInstructions(), 0u);
}

TEST(ProfileTest, RejectsBadMagic) {
  std::vector<uint8_t> Bytes = makeSampleProfile().serialize();
  Bytes[0] ^= 0xFF;
  Result<prof::Profile> R = prof::Profile::deserialize(Bytes);
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.message().find("invalid profile"), std::string::npos);
  EXPECT_NE(R.message().find("bad magic"), std::string::npos);
}

TEST(ProfileTest, RejectsVersionMismatch) {
  std::vector<uint8_t> Bytes = makeSampleProfile().serialize();
  Bytes[4] = 99; // version word follows the 4-byte magic
  Result<prof::Profile> R = prof::Profile::deserialize(Bytes);
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.message().find("version 99"), std::string::npos);
}

TEST(ProfileTest, RejectsTruncationAtEveryLength) {
  std::vector<uint8_t> Bytes = makeSampleProfile().serialize();
  // Every strict prefix must be rejected, never crash or silently parse.
  for (size_t Len = 0; Len < Bytes.size(); ++Len) {
    std::vector<uint8_t> Prefix(Bytes.begin(), Bytes.begin() + Len);
    Result<prof::Profile> R = prof::Profile::deserialize(Prefix);
    EXPECT_FALSE(bool(R)) << "prefix of " << Len << " bytes parsed";
    if (!R) {
      EXPECT_NE(R.message().find("invalid profile"), std::string::npos);
    }
  }
}

TEST(ProfileTest, RejectsTrailingBytes) {
  std::vector<uint8_t> Bytes = makeSampleProfile().serialize();
  Bytes.push_back(0);
  Result<prof::Profile> R = prof::Profile::deserialize(Bytes);
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.message().find("trailing"), std::string::npos);
}

TEST(ProfileTest, RejectsTakenExceedingExecuted) {
  prof::Profile P = makeSampleProfile();
  P.Procs[0].Branches[0] = {5, 6};
  Result<prof::Profile> R = prof::Profile::deserialize(P.serialize());
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.message().find("taken count"), std::string::npos);
}

TEST(ProfileTest, RejectsEdgeEndpointOutOfRange) {
  prof::Profile P = makeSampleProfile();
  P.Edges[0].Callee = 7;
  Result<prof::Profile> R = prof::Profile::deserialize(P.serialize());
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.message().find("out of range"), std::string::npos);
}

TEST(ParseUnsignedTest, AcceptsPlainDecimal) {
  Result<uint64_t> R = parseUnsigned("0");
  ASSERT_TRUE(bool(R));
  EXPECT_EQ(*R, 0u);
  R = parseUnsigned("42");
  ASSERT_TRUE(bool(R));
  EXPECT_EQ(*R, 42u);
  R = parseUnsigned("18446744073709551615"); // UINT64_MAX
  ASSERT_TRUE(bool(R));
  EXPECT_EQ(*R, ~0ull);
}

TEST(ParseUnsignedTest, RejectsNonNumeric) {
  for (const char *Bad : {"", "abc", "4x", "-1", "+3", " 7", "7 ", "0x10"})
    EXPECT_FALSE(bool(parseUnsigned(Bad))) << Bad;
}

TEST(ParseUnsignedTest, RejectsOverflowAndMax) {
  // One past UINT64_MAX must fail, not wrap.
  EXPECT_FALSE(bool(parseUnsigned("18446744073709551616")));
  EXPECT_FALSE(bool(parseUnsigned("99999999999999999999999")));
  EXPECT_FALSE(bool(parseUnsigned("256", 255)));
  Result<uint64_t> R = parseUnsigned("255", 255);
  ASSERT_TRUE(bool(R));
  EXPECT_EQ(*R, 255u);
}

TEST(ParseUnsignedTest, MessageQuotesInput) {
  Result<uint64_t> R = parseUnsigned("4x");
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.message().find("4x"), std::string::npos);
}

TEST(ContentHashTest, DeterministicAndOrderSensitive) {
  Hasher A, B;
  A.addU64(1);
  A.addU64(2);
  B.addU64(1);
  B.addU64(2);
  EXPECT_EQ(A.digest(), B.digest());
  Hasher C;
  C.addU64(2);
  C.addU64(1);
  EXPECT_NE(A.digest(), C.digest());
}

TEST(ContentHashTest, SingleBitSensitivity) {
  std::vector<uint8_t> Bytes(1027, 0xA5);
  uint64_t Base = hashBytes(Bytes);
  for (size_t I : {size_t(0), size_t(513), Bytes.size() - 1}) {
    Bytes[I] ^= 1;
    EXPECT_NE(hashBytes(Bytes), Base) << "flipped byte " << I;
    Bytes[I] ^= 1;
  }
  EXPECT_EQ(hashBytes(Bytes), Base);
}

TEST(ContentHashTest, LengthPrefixPreventsConcatAliasing) {
  Hasher A, B;
  A.addString("ab");
  A.addString("c");
  B.addString("a");
  B.addString("bc");
  EXPECT_NE(A.digest(), B.digest());
}

class AtomicWriteTest : public ::testing::Test {
protected:
  void SetUp() override {
    Dir = ::testing::TempDir() + "om64_atomic_XXXXXX";
    ASSERT_NE(mkdtemp(Dir.data()), nullptr);
  }
  /// Entries in Dir other than "." and "..".
  std::vector<std::string> entries() const {
    std::vector<std::string> Out;
    DIR *D = opendir(Dir.c_str());
    if (!D)
      return Out;
    while (dirent *E = readdir(D)) {
      std::string Name = E->d_name;
      if (Name != "." && Name != "..")
        Out.push_back(Name);
    }
    closedir(D);
    return Out;
  }
  std::string Dir;
};

TEST_F(AtomicWriteTest, WritesAndReplacesWithoutStrayTempFiles) {
  std::string Path = Dir + "/out.bin";
  std::vector<uint8_t> First = {1, 2, 3};
  ASSERT_FALSE(bool(writeFileBytes(Path, First)));
  Result<std::vector<uint8_t>> R = readFileBytes(Path);
  ASSERT_TRUE(bool(R));
  EXPECT_EQ(*R, First);

  std::vector<uint8_t> Second(4096, 0x7E);
  ASSERT_FALSE(bool(writeFileBytes(Path, Second)));
  R = readFileBytes(Path);
  ASSERT_TRUE(bool(R));
  EXPECT_EQ(*R, Second);

  // The temp file the write staged through must be gone either way.
  std::vector<std::string> Left = entries();
  ASSERT_EQ(Left.size(), 1u);
  EXPECT_EQ(Left[0], "out.bin");
}

TEST_F(AtomicWriteTest, FailureNamesThePathAndLeavesNoFile) {
  std::string Path = Dir + "/missing-subdir/out.bin";
  Error E = writeFileBytes(Path, {1});
  ASSERT_TRUE(bool(E));
  EXPECT_NE(E.message().find(Path), std::string::npos);
  EXPECT_EQ(entries().size(), 0u);
}

TEST_F(AtomicWriteTest, UnwritableDirectoryFailsCleanly) {
  if (::geteuid() == 0)
    GTEST_SKIP() << "root ignores directory permissions";
  ASSERT_EQ(chmod(Dir.c_str(), 0500), 0);
  Error E = writeFileBytes(Dir + "/out.bin", {1});
  chmod(Dir.c_str(), 0700);
  EXPECT_TRUE(bool(E));
  EXPECT_EQ(entries().size(), 0u);
}

} // namespace

//===- tests/bsr_relax_slow_test.cpp - BSR relaxation at scale (slow) -----===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The silent-forfeit regression suite for the worst-case-then-shrink BSR
/// relaxation:
///
///   * Boundary pinning: a caller/callee pair pushed to the exact edge of
///     the 21-bit reach must flip from retained to reverted at one
///     additional pad word — the fixpoint's bound is sharp, at -j1 and
///     -j4 alike.
///   * Mega scale: the ~1.05M-instruction megagen image plus a collected
///     profile must produce a layout-reordered, BSR-retaining link. On the
///     pre-fixpoint code this fails twice over: the one-shot pessimistic
///     pass reverted 100% of conversions, and runProfileLayout bailed on
///     the whole-text gate, so the image got neither optimization.
///   * Warm relinks through IncrementalLinker stay byte-identical to cold
///     links with the same profile (the linker's warm state is keyed by
///     linkConfigKey, which covers the relaxation inputs).
///
//===----------------------------------------------------------------------===//

#include "megagen/MegaGen.h"
#include "om/Incremental.h"
#include "om/Om.h"
#include "om/Verify.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace om64;
using namespace om64::isa;
using namespace om64::megagen;
using namespace om64::obj;
using namespace om64::om;

namespace {

OmResult runOm(const std::vector<ObjectFile> &Objs, const OmOptions &Opts) {
  Result<OmResult> R = om::optimize(Objs, Opts);
  EXPECT_TRUE(bool(R)) << (R ? "" : R.message());
  return R ? R.take() : OmResult{};
}

int64_t runExitCode(const Image &Img) {
  Result<sim::SimResult> R = sim::run(Img);
  EXPECT_TRUE(bool(R)) << (R ? "" : R.message());
  return R ? R->ExitCode : -1;
}

//===----------------------------------------------------------------------===//
// Boundary pinning: the admission bound is sharp.
//===----------------------------------------------------------------------===//

// The same three-module shape as om_parallel_test's far-call suite: a.main
// calls c.far through the GAT with a pad module in between.

ObjectFile makeCallerObject() {
  ObjectFile O;
  O.ModuleName = "a";
  auto addWord = [&O](const Inst &I) {
    uint32_t W = encode(I);
    for (unsigned B = 0; B < 4; ++B)
      O.Text.push_back(static_cast<uint8_t>(W >> (8 * B)));
  };
  addWord(makeMem(Opcode::Ldah, GP, 0, PV));  //  0: prologue GpHigh
  addWord(makeMem(Opcode::Lda, GP, 0, GP));   //  4: prologue GpLow
  addWord(makeMem(Opcode::Lda, SP, -16, SP)); //  8
  addWord(makeMem(Opcode::Stq, RA, 0, SP));   // 12
  addWord(makeMem(Opcode::Ldq, PV, 0, GP));   // 16: lit0 load, &c.far
  addWord(makeJump(Opcode::Jsr, RA, PV));     // 20: LituseJsr lit0
  addWord(makeMem(Opcode::Ldah, GP, 0, RA));  // 24: post-call GpHigh
  addWord(makeMem(Opcode::Lda, GP, 0, GP));   // 28: post-call GpLow
  addWord(makeMem(Opcode::Ldq, RA, 0, SP));   // 32
  addWord(makeMem(Opcode::Lda, SP, 16, SP));  // 36
  addWord(makeJump(Opcode::Ret, Zero, RA));   // 40

  Symbol Main;
  Main.Name = "a.main";
  Main.Section = SectionKind::Text;
  Main.Size = 44;
  Main.IsProcedure = Main.IsExported = Main.IsDefined = true;
  Symbol Far;
  Far.Name = "c.far";
  Far.Section = SectionKind::Text;
  Far.IsProcedure = true; // external reference
  O.Symbols = {Main, Far};
  O.Gat = {{1, 0}};

  auto lit = [](uint64_t Off, uint32_t GatIndex, uint32_t LitId) {
    Reloc R;
    R.Kind = RelocKind::Literal;
    R.Offset = Off;
    R.GatIndex = GatIndex;
    R.LiteralId = LitId;
    return R;
  };
  auto use = [](RelocKind K, uint64_t Off, uint32_t LitId) {
    Reloc R;
    R.Kind = K;
    R.Offset = Off;
    R.LiteralId = LitId;
    return R;
  };
  auto gpdisp = [](uint64_t Off, uint64_t Anchor, GpDispKind K) {
    Reloc R;
    R.Kind = RelocKind::GpDisp;
    R.Offset = Off;
    R.AnchorOffset = Anchor;
    R.PairOffset = 4;
    R.GpKind = static_cast<uint8_t>(K);
    return R;
  };
  O.Relocs = {gpdisp(0, 0, GpDispKind::Prologue),
              lit(16, 0, 0),
              use(RelocKind::LituseJsr, 20, 0),
              gpdisp(24, 24, GpDispKind::PostCall)};

  ProcDesc MainDesc;
  MainDesc.TextSize = 44;
  O.Procs = {MainDesc};
  return O;
}

ObjectFile makePadObject(size_t NopCount) {
  ObjectFile O;
  O.ModuleName = "pad";
  uint32_t NopW = encode(makeOp(Opcode::Addq, T0, T0, T0));
  uint32_t RetW = encode(makeJump(Opcode::Ret, Zero, RA));
  O.Text.reserve((NopCount + 1) * 4);
  for (size_t I = 0; I < NopCount; ++I) {
    uint32_t W = (I % 64 == 63) ? RetW : NopW;
    for (unsigned B = 0; B < 4; ++B)
      O.Text.push_back(static_cast<uint8_t>(W >> (8 * B)));
  }
  for (unsigned B = 0; B < 4; ++B)
    O.Text.push_back(static_cast<uint8_t>(RetW >> (8 * B)));

  Symbol Filler;
  Filler.Name = "pad.filler";
  Filler.Section = SectionKind::Text;
  Filler.Size = (NopCount + 1) * 4;
  Filler.IsProcedure = Filler.IsExported = Filler.IsDefined = true;
  O.Symbols = {Filler};

  ProcDesc Desc;
  Desc.TextSize = (NopCount + 1) * 4;
  Desc.UsesGp = false;
  O.Procs = {Desc};
  return O;
}

ObjectFile makeFarObject() {
  ObjectFile O;
  O.ModuleName = "c";
  auto addWord = [&O](const Inst &I) {
    uint32_t W = encode(I);
    for (unsigned B = 0; B < 4; ++B)
      O.Text.push_back(static_cast<uint8_t>(W >> (8 * B)));
  };
  addWord(makeOpLit(Opcode::Bis, Zero, 7, V0)); // 0: v0 = 7
  addWord(makeJump(Opcode::Ret, Zero, RA));     // 4

  Symbol Far;
  Far.Name = "c.far";
  Far.Section = SectionKind::Text;
  Far.Size = 8;
  Far.IsProcedure = Far.IsExported = Far.IsDefined = true;
  O.Symbols = {Far};

  ProcDesc Desc;
  Desc.TextSize = 8;
  Desc.UsesGp = false;
  O.Procs = {Desc};
  return O;
}

std::vector<ObjectFile> makeFarCallObjects(size_t PadNops) {
  std::vector<ObjectFile> Objs = {makeCallerObject(), makePadObject(PadNops),
                                  makeFarObject()};
  for (const ObjectFile &O : Objs)
    EXPECT_FALSE(bool(O.verify())) << O.verify().message();
  return Objs;
}

/// Links the far-call program with \p PadNops filler words at \p Jobs and
/// returns whether the conversion survived relaxation (checking the stats
/// and the emitted opcodes agree).
bool conversionSurvives(size_t PadNops, unsigned Jobs, OmResult *Out = nullptr) {
  OmOptions Opts;
  Opts.Level = OmLevel::Full;
  Opts.Jobs = Jobs;
  Opts.SerialFallbackInsts = 0; // tiny input; exercise the real pipeline
  Opts.Verify = true;           // post-assembly range audit on every link
  OmResult R = runOm(makeFarCallObjects(PadNops), Opts);
  unsigned Bsrs = 0, Jsrs = 0;
  for (uint32_t W : R.Image.textWords())
    if (std::optional<Inst> I = decode(W)) {
      Bsrs += I->Op == Opcode::Bsr;
      Jsrs += I->Op == Opcode::Jsr;
    }
  bool Survived = R.Stats.JsrConvertedToBsr == 1;
  EXPECT_EQ(R.Stats.BsrRetainedByRelax, R.Stats.JsrConvertedToBsr);
  EXPECT_EQ(R.Stats.BsrFallbackJsrs, Survived ? 0u : 1u);
  EXPECT_EQ(Bsrs, Survived ? 1u : 0u);
  EXPECT_EQ(Jsrs, Survived ? 0u : 1u);
  EXPECT_EQ(runExitCode(R.Image), 7);
  if (Out)
    *Out = std::move(R);
  return Survived;
}

TEST(BsrRelaxSlowTest, AdmissionBoundIsSharpAtTheReachBoundary) {
  // The 21-bit reach spans ((1<<20)-1)*4 bytes. Binary-search the pad size
  // for the retained->reverted flip and demand it is a single-word step:
  // F words retained, F+1 reverted, identically at -j1 and -j4.
  size_t Lo = 1048000, Hi = 1049000;
  ASSERT_TRUE(conversionSurvives(Lo, 1));
  ASSERT_FALSE(conversionSurvives(Hi, 1));
  while (Hi - Lo > 1) {
    size_t Mid = Lo + (Hi - Lo) / 2;
    if (conversionSurvives(Mid, 1))
      Lo = Mid;
    else
      Hi = Mid;
  }
  EXPECT_EQ(Hi, Lo + 1);

  // The flip point is identical in the parallel pipeline, and the images
  // on both sides of it are byte-identical across job counts.
  OmResult S1, P1;
  EXPECT_TRUE(conversionSurvives(Lo, 1, &S1));
  EXPECT_TRUE(conversionSurvives(Lo, 4, &P1));
  EXPECT_TRUE(S1.Image.serialize() == P1.Image.serialize())
      << "-j4 image differs at the last retained pad size";
  OmResult S2, P2;
  EXPECT_FALSE(conversionSurvives(Hi, 1, &S2));
  EXPECT_FALSE(conversionSurvives(Hi, 4, &P2));
  EXPECT_TRUE(S2.Image.serialize() == P2.Image.serialize())
      << "-j4 image differs at the first reverted pad size";
}

//===----------------------------------------------------------------------===//
// Mega scale: layout runs and conversions survive.
//===----------------------------------------------------------------------===//

TEST(BsrRelaxSlowTest, MegaImageKeepsLayoutAndConversions) {
  // The default spec: ~1.05M instructions, 1024 procedures, 64 modules —
  // pessimistic whole-text size far beyond the 21-bit BSR reach.
  MegaSpec Spec;
  MegaProgram MP = generate(Spec);
  for (const ObjectFile &O : MP.Objects)
    ASSERT_FALSE(bool(O.verify())) << O.verify().message();

  OmOptions Base;
  Base.Level = OmLevel::Full;
  Base.SerialFallbackInsts = 0;
  Base.Jobs = 1;
  OmResult BaseLink = runOm(MP.Objects, Base);
  ASSERT_GT(BaseLink.Stats.InstructionsTotal, 1000000u);
  // Even without a profile the two-sided span bound must keep most
  // conversions: only calls genuinely stretching past 4MB revert.
  ASSERT_GT(BaseLink.Stats.JsrConvertedToBsr, 0u);

  sim::SimConfig ProfCfg;
  ProfCfg.Profile = true;
  Result<sim::SimResult> ProfRun = sim::run(BaseLink.Image, ProfCfg);
  ASSERT_TRUE(bool(ProfRun)) << ProfRun.message();

  OmOptions Lay = Base;
  Lay.HotColdLayout = true;
  Lay.Profile = ProfRun->Profile;
  Lay.Verify = true; // includes the post-assembly range audit
  OmResult LayLink = runOm(MP.Objects, Lay);

  // Regression core: hot-cold layout must actually run (the old code
  // bailed on the whole-text gate, leaving the procedure order untouched).
  std::vector<std::string> BaseOrder, LayOrder;
  for (const ImageProc &P : BaseLink.Image.Procs)
    BaseOrder.push_back(P.Name);
  for (const ImageProc &P : LayLink.Image.Procs)
    LayOrder.push_back(P.Name);
  EXPECT_NE(BaseOrder, LayOrder)
      << "profile-guided procedure reordering did not happen at mega scale";

  // >90% of conversions must survive relaxation under the reordered
  // layout (the old one-shot pass reverted 100%).
  uint64_t Kept = LayLink.Stats.JsrConvertedToBsr;
  uint64_t Reverted = LayLink.Stats.BsrFallbackJsrs;
  ASSERT_GT(Kept + Reverted, 0u);
  EXPECT_GT(static_cast<double>(Kept) / static_cast<double>(Kept + Reverted),
            0.9)
      << Kept << " kept vs " << Reverted << " reverted";
  EXPECT_EQ(LayLink.Stats.BsrRetainedByRelax, Kept);
  EXPECT_GE(LayLink.Stats.BsrRelaxRounds, 1u);

  // Behaviour unchanged; -j4 byte-identical.
  EXPECT_EQ(runExitCode(LayLink.Image), runExitCode(BaseLink.Image));
  OmOptions LayPar = Lay;
  LayPar.Jobs = 4;
  OmResult ParLink = runOm(MP.Objects, LayPar);
  EXPECT_TRUE(LayLink.Image.serialize() == ParLink.Image.serialize())
      << "-j4 mega layout image differs from -j1";

  // Warm relink through the incremental layer reproduces the cold image.
  std::vector<std::vector<uint8_t>> Modules;
  for (const ObjectFile &O : MP.Objects)
    Modules.push_back(O.serialize());
  IncrementalLinker Inc(Lay);
  Result<RelinkResult> Cold = Inc.relink(Modules);
  ASSERT_TRUE(bool(Cold)) << Cold.message();
  EXPECT_TRUE(Cold->ImageBytes == LayLink.Image.serialize());
  Result<RelinkResult> Warm = Inc.relink(Modules);
  ASSERT_TRUE(bool(Warm)) << Warm.message();
  EXPECT_TRUE(Warm->Stats.Warm);
  EXPECT_TRUE(Warm->ImageBytes == Cold->ImageBytes)
      << "warm relink diverged from the cold link";
}

} // namespace

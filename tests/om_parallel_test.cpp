//===- tests/om_parallel_test.cpp - Parallel OM pipeline tests ------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the parallel per-procedure OM pipeline and the displacement
/// range handling it relies on:
///
///   * determinism: linking every workload with -j1 and -j4 must produce
///     byte-identical executables at every OM level,
///   * BSR range: a synthetic program whose caller and callee are pushed
///     more than 4MB apart must fall back to the original JSR instead of
///     emitting an unencodable BSR,
///   * GP displacement range: data symbols beyond the 16-bit GP window
///     must keep (or LDAH-convert) their address loads rather than
///     truncating displacements — in release builds too.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "om/Verify.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace om64;
using namespace om64::isa;
using namespace om64::obj;
using namespace om64::om;
using namespace om64::test;

namespace {

OmResult runOm(const std::vector<ObjectFile> &Objs, const OmOptions &Opts) {
  Result<OmResult> R = om::optimize(Objs, Opts);
  EXPECT_TRUE(bool(R)) << (R ? "" : R.message());
  return R ? R.take() : OmResult{};
}

unsigned countOpcode(const Image &Img, Opcode Op) {
  unsigned N = 0;
  for (uint32_t W : Img.textWords())
    if (std::optional<Inst> I = decode(W))
      N += I->Op == Op;
  return N;
}

int64_t runExitCode(const Image &Img) {
  Result<sim::SimResult> R = sim::run(Img);
  EXPECT_TRUE(bool(R)) << (R ? "" : R.message());
  return R ? R->ExitCode : -1;
}

//===----------------------------------------------------------------------===//
// Tentpole: -j1 and -jN produce byte-identical images on every workload.
//===----------------------------------------------------------------------===//

TEST(OmParallelTest, JobCountsProduceIdenticalImages) {
  struct LevelConfig {
    OmLevel Level;
    bool Sched;
    const char *Name;
  };
  const LevelConfig Configs[] = {
      {OmLevel::None, false, "none"},
      {OmLevel::Simple, false, "simple"},
      {OmLevel::Full, false, "full"},
      {OmLevel::Full, true, "full+sched"},
  };

  for (const std::string &Name : wl::workloadNames()) {
    Result<wl::BuiltWorkload> W = wl::buildWorkload(Name);
    ASSERT_TRUE(bool(W)) << Name << ": " << W.message();
    for (const LevelConfig &C : Configs) {
      OmOptions Opts;
      Opts.Level = C.Level;
      Opts.Reschedule = C.Sched;
      Opts.AlignLoopTargets = C.Sched;
      // These workloads sit far below the serial-fallback cutoff; disable
      // it so -j4 genuinely exercises the parallel pipeline here.
      Opts.SerialFallbackInsts = 0;

      Opts.Jobs = 1;
      Result<OmResult> Serial = wl::linkWithOm(*W, wl::CompileMode::Each, Opts);
      ASSERT_TRUE(bool(Serial))
          << Name << " OM-" << C.Name << " -j1: " << Serial.message();
      Opts.Jobs = 4;
      Result<OmResult> Par = wl::linkWithOm(*W, wl::CompileMode::Each, Opts);
      ASSERT_TRUE(bool(Par))
          << Name << " OM-" << C.Name << " -j4: " << Par.message();

      EXPECT_EQ(Serial->Stats.Jobs, 1u);
      EXPECT_EQ(Par->Stats.Jobs, 4u);
      // The whole executable, not just text: GAT contents, data placement,
      // entry metadata and all.
      EXPECT_TRUE(Serial->Image.serialize() == Par->Image.serialize())
          << Name << " OM-" << C.Name
          << ": -j4 image differs from the -j1 image";
      EXPECT_EQ(Serial->Stats.JsrConvertedToBsr, Par->Stats.JsrConvertedToBsr)
          << Name << " OM-" << C.Name;
      EXPECT_EQ(Serial->Stats.AddressLoadsConverted,
                Par->Stats.AddressLoadsConverted)
          << Name << " OM-" << C.Name;
      EXPECT_EQ(Serial->Stats.AddressLoadsNullified,
                Par->Stats.AddressLoadsNullified)
          << Name << " OM-" << C.Name;
      EXPECT_EQ(Serial->Stats.InstructionsDeleted,
                Par->Stats.InstructionsDeleted)
          << Name << " OM-" << C.Name;
    }
  }
}

//===----------------------------------------------------------------------===//
// Satellite: BSR fallback when converted calls exceed the 21-bit reach.
//===----------------------------------------------------------------------===//

/// Caller module: a.main calls the external procedure c.far through the
/// GAT and returns its value as the exit code.
ObjectFile makeCallerObject() {
  ObjectFile O;
  O.ModuleName = "a";
  auto addWord = [&O](const Inst &I) {
    uint32_t W = encode(I);
    for (unsigned B = 0; B < 4; ++B)
      O.Text.push_back(static_cast<uint8_t>(W >> (8 * B)));
  };
  addWord(makeMem(Opcode::Ldah, GP, 0, PV));  //  0: prologue GpHigh
  addWord(makeMem(Opcode::Lda, GP, 0, GP));   //  4: prologue GpLow
  addWord(makeMem(Opcode::Lda, SP, -16, SP)); //  8
  addWord(makeMem(Opcode::Stq, RA, 0, SP));   // 12
  addWord(makeMem(Opcode::Ldq, PV, 0, GP));   // 16: lit0 load, &c.far
  addWord(makeJump(Opcode::Jsr, RA, PV));     // 20: LituseJsr lit0
  addWord(makeMem(Opcode::Ldah, GP, 0, RA));  // 24: post-call GpHigh
  addWord(makeMem(Opcode::Lda, GP, 0, GP));   // 28: post-call GpLow
  addWord(makeMem(Opcode::Ldq, RA, 0, SP));   // 32
  addWord(makeMem(Opcode::Lda, SP, 16, SP));  // 36
  addWord(makeJump(Opcode::Ret, Zero, RA));   // 40

  Symbol Main;
  Main.Name = "a.main";
  Main.Section = SectionKind::Text;
  Main.Size = 44;
  Main.IsProcedure = Main.IsExported = Main.IsDefined = true;
  Symbol Far;
  Far.Name = "c.far";
  Far.Section = SectionKind::Text;
  Far.IsProcedure = true; // external reference
  O.Symbols = {Main, Far};
  O.Gat = {{1, 0}};

  auto lit = [](uint64_t Off, uint32_t GatIndex, uint32_t LitId) {
    Reloc R;
    R.Kind = RelocKind::Literal;
    R.Offset = Off;
    R.GatIndex = GatIndex;
    R.LiteralId = LitId;
    return R;
  };
  auto use = [](RelocKind K, uint64_t Off, uint32_t LitId) {
    Reloc R;
    R.Kind = K;
    R.Offset = Off;
    R.LiteralId = LitId;
    return R;
  };
  auto gpdisp = [](uint64_t Off, uint64_t Anchor, GpDispKind K) {
    Reloc R;
    R.Kind = RelocKind::GpDisp;
    R.Offset = Off;
    R.AnchorOffset = Anchor;
    R.PairOffset = 4;
    R.GpKind = static_cast<uint8_t>(K);
    return R;
  };
  O.Relocs = {gpdisp(0, 0, GpDispKind::Prologue),
              lit(16, 0, 0),
              use(RelocKind::LituseJsr, 20, 0),
              gpdisp(24, 24, GpDispKind::PostCall)};

  ProcDesc MainDesc;
  MainDesc.TextSize = 44;
  O.Procs = {MainDesc};
  return O;
}

/// Filler module: one never-called procedure of NopCount filler
/// instructions. Placed between caller and callee it pushes them
/// NopCount*4 bytes apart. Every 64th instruction is an (unreachable)
/// ret: a scheduling barrier that caps region size, because the list
/// scheduler's ready-selection scan is quadratic in region length and a
/// single megabyte-scale block would take minutes to reschedule.
ObjectFile makePadObject(size_t NopCount) {
  ObjectFile O;
  O.ModuleName = "pad";
  uint32_t NopW = encode(makeOp(Opcode::Addq, T0, T0, T0));
  uint32_t RetW = encode(makeJump(Opcode::Ret, Zero, RA));
  O.Text.reserve((NopCount + 1) * 4);
  for (size_t I = 0; I < NopCount; ++I) {
    uint32_t W = (I % 64 == 63) ? RetW : NopW;
    for (unsigned B = 0; B < 4; ++B)
      O.Text.push_back(static_cast<uint8_t>(W >> (8 * B)));
  }
  for (unsigned B = 0; B < 4; ++B)
    O.Text.push_back(static_cast<uint8_t>(RetW >> (8 * B)));

  Symbol Filler;
  Filler.Name = "pad.filler";
  Filler.Section = SectionKind::Text;
  Filler.Size = (NopCount + 1) * 4;
  Filler.IsProcedure = Filler.IsExported = Filler.IsDefined = true;
  O.Symbols = {Filler};

  ProcDesc Desc;
  Desc.TextSize = (NopCount + 1) * 4;
  Desc.UsesGp = false;
  O.Procs = {Desc};
  return O;
}

/// Callee module: c.far returns 7. No GP prologue (it touches no data),
/// so converted callers may also drop their PV load.
ObjectFile makeFarObject() {
  ObjectFile O;
  O.ModuleName = "c";
  auto addWord = [&O](const Inst &I) {
    uint32_t W = encode(I);
    for (unsigned B = 0; B < 4; ++B)
      O.Text.push_back(static_cast<uint8_t>(W >> (8 * B)));
  };
  addWord(makeOpLit(Opcode::Bis, Zero, 7, V0)); // 0: v0 = 7
  addWord(makeJump(Opcode::Ret, Zero, RA));     // 4

  Symbol Far;
  Far.Name = "c.far";
  Far.Section = SectionKind::Text;
  Far.Size = 8;
  Far.IsProcedure = Far.IsExported = Far.IsDefined = true;
  O.Symbols = {Far};

  ProcDesc Desc;
  Desc.TextSize = 8;
  Desc.UsesGp = false;
  O.Procs = {Desc};
  return O;
}

std::vector<ObjectFile> makeFarCallObjects(size_t PadNops) {
  std::vector<ObjectFile> Objs = {makeCallerObject(), makePadObject(PadNops),
                                  makeFarObject()};
  for (const ObjectFile &O : Objs)
    EXPECT_FALSE(bool(O.verify())) << O.verify().message();
  return Objs;
}

TEST(OmParallelTest, BsrOutOfRangeFallsBackToJsr) {
  // 1,050,000 nops = 4.2MB of pad text: the caller/callee distance exceeds
  // the 21-bit BSR word reach, so the converted call must revert. This has
  // to hold in release builds — the old code asserted and, under NDEBUG,
  // silently emitted a truncated branch.
  std::vector<ObjectFile> Objs = makeFarCallObjects(1050000);

  OmOptions Opts;
  Opts.Level = OmLevel::Full;
  Opts.Jobs = 1;
  OmResult Full = runOm(Objs, Opts);
  EXPECT_EQ(runExitCode(Full.Image), 7);
  EXPECT_EQ(Full.Stats.BsrFallbackJsrs, 1u);
  EXPECT_EQ(Full.Stats.JsrConvertedToBsr, 0u);
  EXPECT_EQ(countOpcode(Full.Image, Opcode::Jsr), 1u);
  EXPECT_EQ(countOpcode(Full.Image, Opcode::Bsr), 0u);

  // The fallback must be deterministic across job counts too.
  Opts.Jobs = 4;
  OmResult Par = runOm(Objs, Opts);
  EXPECT_EQ(Par.Stats.BsrFallbackJsrs, 1u);
  EXPECT_TRUE(Full.Image.serialize() == Par.Image.serialize())
      << "-j4 image differs from -j1 with the BSR fallback active";

  // All levels agree behaviourally, with per-stage verification on.
  OmOptions DiffOpts;
  DiffOpts.VerifyEachStage = true;
  Result<DifferentialReport> Rep = om::runDifferential(Objs, DiffOpts);
  ASSERT_TRUE(bool(Rep)) << Rep.message();
  for (const DifferentialLeg &Leg : Rep->Legs)
    EXPECT_EQ(Leg.ExitCode, 7);
}

TEST(OmParallelTest, NearBsrStillConverts) {
  // Control: with a small pad the same program converts its JSR and keeps
  // no fallback.
  std::vector<ObjectFile> Objs = makeFarCallObjects(100);

  OmOptions Opts;
  Opts.Level = OmLevel::Full;
  OmResult Full = runOm(Objs, Opts);
  EXPECT_EQ(runExitCode(Full.Image), 7);
  EXPECT_EQ(Full.Stats.JsrConvertedToBsr, 1u);
  EXPECT_EQ(Full.Stats.BsrFallbackJsrs, 0u);
  EXPECT_EQ(countOpcode(Full.Image, Opcode::Jsr), 0u);
  EXPECT_EQ(countOpcode(Full.Image, Opcode::Bsr), 1u);
}

//===----------------------------------------------------------------------===//
// Satellite: data symbols beyond the 16-bit GP displacement window.
//===----------------------------------------------------------------------===//

/// One module with data both inside and far outside the GP window:
///
///   g.small  (8B, direct uses)      -> load nullified, uses GP-relative
///   g.small2 (8B, escaping)         -> load converted to one LDA
///   g.big    (~100KB in, direct)    -> load converted to LDAH, low
///                                      displacements on the uses
///   g.far2   (~200KB in, escaping)  -> beyond any single instruction:
///                                      stays a GAT load
///
/// g.fill is never referenced; being smaller than g.big it sorts ahead of
/// it and pushes both big symbols past the 32KB window under every data
/// ordering. main stores 7 into g.big and returns the value read back.
ObjectFile makeFarDataObject() {
  ObjectFile O;
  O.ModuleName = "g";
  auto addWord = [&O](const Inst &I) {
    uint32_t W = encode(I);
    for (unsigned B = 0; B < 4; ++B)
      O.Text.push_back(static_cast<uint8_t>(W >> (8 * B)));
  };
  addWord(makeMem(Opcode::Ldah, GP, 0, PV)); //  0: prologue GpHigh
  addWord(makeMem(Opcode::Lda, GP, 0, GP));  //  4: prologue GpLow
  addWord(makeMem(Opcode::Ldq, T0, 0, GP));  //  8: lit0 load, &g.big
  addWord(makeMem(Opcode::Lda, T1, 7, Zero)); // 12: t1 = 7
  addWord(makeMem(Opcode::Stq, T1, 0, T0));  // 16: LituseBase lit0
  addWord(makeMem(Opcode::Ldq, V0, 0, T0));  // 20: LituseBase lit0
  addWord(makeMem(Opcode::Ldq, T2, 0, GP));  // 24: lit1 load, &g.far2
  addWord(makeMem(Opcode::Ldq, T3, 0, GP));  // 28: lit2 load, &g.small
  addWord(makeMem(Opcode::Stq, T1, 0, T3));  // 32: LituseBase lit2
  addWord(makeMem(Opcode::Ldq, T4, 0, T3));  // 36: LituseBase lit2
  addWord(makeMem(Opcode::Ldq, T5, 0, GP));  // 40: lit3 load, &g.small2
  addWord(makeJump(Opcode::Ret, Zero, RA));  // 44

  O.Data.assign(16, 0);
  O.BssSize = 100000 + 100008 + 100016;

  Symbol Main;
  Main.Name = "g.main";
  Main.Section = SectionKind::Text;
  Main.Size = 48;
  Main.IsProcedure = Main.IsExported = Main.IsDefined = true;
  auto data = [](const char *Name, SectionKind Sec, uint64_t Off,
                 uint64_t Size) {
    Symbol S;
    S.Name = Name;
    S.Section = Sec;
    S.Offset = Off;
    S.Size = Size;
    S.IsExported = S.IsDefined = true;
    return S;
  };
  O.Symbols = {Main,
               data("g.small", SectionKind::Data, 0, 8),
               data("g.small2", SectionKind::Data, 8, 8),
               data("g.fill", SectionKind::Bss, 0, 100000),
               data("g.big", SectionKind::Bss, 100000, 100008),
               data("g.far2", SectionKind::Bss, 200008, 100016)};
  O.Gat = {{4, 0}, {5, 0}, {1, 0}, {2, 0}}; // big, far2, small, small2

  auto lit = [](uint64_t Off, uint32_t GatIndex, uint32_t LitId) {
    Reloc R;
    R.Kind = RelocKind::Literal;
    R.Offset = Off;
    R.GatIndex = GatIndex;
    R.LiteralId = LitId;
    return R;
  };
  auto use = [](uint64_t Off, uint32_t LitId) {
    Reloc R;
    R.Kind = RelocKind::LituseBase;
    R.Offset = Off;
    R.LiteralId = LitId;
    return R;
  };
  Reloc Gp;
  Gp.Kind = RelocKind::GpDisp;
  Gp.PairOffset = 4;
  Gp.GpKind = static_cast<uint8_t>(GpDispKind::Prologue);
  O.Relocs = {Gp,          lit(8, 0, 0),  use(16, 0), use(20, 0),
              lit(24, 1, 1), lit(28, 2, 2), use(32, 2), use(36, 2),
              lit(40, 3, 3)};

  ProcDesc MainDesc;
  MainDesc.TextSize = 48;
  O.Procs = {MainDesc};
  return O;
}

TEST(OmParallelTest, FarDataKeepsOrConvertsAddressLoads) {
  std::vector<ObjectFile> Objs = {makeFarDataObject()};
  ASSERT_FALSE(bool(Objs[0].verify())) << Objs[0].verify().message();

  OmOptions Opts;
  Opts.Level = OmLevel::Full;
  Opts.SerialFallbackInsts = 0; // keep -j4 genuinely parallel below
  Opts.Jobs = 1;
  OmResult Full = runOm(Objs, Opts);
  EXPECT_EQ(runExitCode(Full.Image), 7);
  EXPECT_EQ(Full.Stats.AddressLoadsTotal, 4u);
  // g.big (LDAH + low displacements) and g.small2 (single LDA).
  EXPECT_EQ(Full.Stats.AddressLoadsConverted, 2u);
  // g.small folds into its uses; g.far2 is out of reach and keeps its
  // GAT load, so exactly one LDQ-from-GP survives.
  EXPECT_EQ(Full.Stats.AddressLoadsNullified, 1u);
  EXPECT_GE(countOpcode(Full.Image, Opcode::Ldah), 1u); // big's high part
  EXPECT_GE(Full.Stats.GatBytesAfter, 8u); // far2's slot survives

  // Byte-determinism with the far-data paths active.
  Opts.Jobs = 4;
  OmResult Par = runOm(Objs, Opts);
  EXPECT_TRUE(Full.Image.serialize() == Par.Image.serialize())
      << "-j4 image differs from -j1 on the far-data workload";

  // Every level computes the same answer; the formerly-asserting range
  // checks must hold (not truncate) under NDEBUG as well.
  OmOptions DiffOpts;
  DiffOpts.VerifyEachStage = true;
  Result<DifferentialReport> Rep = om::runDifferential(Objs, DiffOpts);
  ASSERT_TRUE(bool(Rep)) << Rep.message();
  for (const DifferentialLeg &Leg : Rep->Legs)
    EXPECT_EQ(Leg.ExitCode, 7);
}

//===----------------------------------------------------------------------===//
// Profile-guided layout: determinism, behaviour preservation, and the
// empty-profile identity guarantee.
//===----------------------------------------------------------------------===//

om::OmOptions fullSchedOpts() {
  OmOptions Opts;
  Opts.Level = OmLevel::Full;
  Opts.Reschedule = true;
  Opts.AlignLoopTargets = true;
  // The layout tests compare -j1 against -j4 on tiny workloads; disable
  // the serial fallback so the comparison exercises real parallelism.
  Opts.SerialFallbackInsts = 0;
  return Opts;
}

TEST(OmParallelTest, ProfileLayoutJobCountsProduceIdenticalImages) {
  // The full feedback loop on every workload: profile a base link, relink
  // with --layout=hot-cold at -j1 and -j4, and demand byte-identical
  // images, unchanged program behaviour, and green per-stage invariants.
  uint64_t TotalMoved = 0;
  for (const std::string &Name : wl::workloadNames()) {
    Result<wl::BuiltWorkload> W = wl::buildWorkload(Name);
    ASSERT_TRUE(bool(W)) << Name << ": " << W.message();

    Result<OmResult> Base =
        wl::linkWithOm(*W, wl::CompileMode::Each, fullSchedOpts());
    ASSERT_TRUE(bool(Base)) << Name << ": " << Base.message();
    sim::SimConfig ProfCfg;
    ProfCfg.Profile = true;
    Result<sim::SimResult> ProfRun = sim::run(Base->Image, ProfCfg);
    ASSERT_TRUE(bool(ProfRun)) << Name << ": " << ProfRun.message();
    ASSERT_FALSE(ProfRun->Profile.empty()) << Name;

    OmOptions Lay = fullSchedOpts();
    Lay.HotColdLayout = true;
    Lay.Profile = ProfRun->Profile;
    Lay.VerifyEachStage = true; // includes the new profile-layout stage

    Lay.Jobs = 1;
    Result<OmResult> Serial = wl::linkWithOm(*W, wl::CompileMode::Each, Lay);
    ASSERT_TRUE(bool(Serial)) << Name << " layout -j1: " << Serial.message();
    Lay.Jobs = 4;
    Result<OmResult> Par = wl::linkWithOm(*W, wl::CompileMode::Each, Lay);
    ASSERT_TRUE(bool(Par)) << Name << " layout -j4: " << Par.message();

    EXPECT_TRUE(Serial->Image.serialize() == Par->Image.serialize())
        << Name << ": -j4 layout image differs from the -j1 layout image";
    EXPECT_EQ(Serial->Stats.LayoutProcsReordered,
              Par->Stats.LayoutProcsReordered)
        << Name;
    EXPECT_EQ(Serial->Stats.LayoutBlocksMoved, Par->Stats.LayoutBlocksMoved)
        << Name;
    EXPECT_EQ(Serial->Stats.LayoutColdBlocks, Par->Stats.LayoutColdBlocks)
        << Name;
    EXPECT_EQ(Serial->Stats.LayoutFixupBranches,
              Par->Stats.LayoutFixupBranches)
        << Name;
    TotalMoved += Serial->Stats.LayoutBlocksMoved;

    // The reordered image must still compute the same answer.
    Result<sim::SimResult> LayRun = sim::run(Serial->Image);
    ASSERT_TRUE(bool(LayRun)) << Name << ": " << LayRun.message();
    EXPECT_EQ(LayRun->ExitCode, ProfRun->ExitCode) << Name;
    EXPECT_EQ(LayRun->Output, ProfRun->Output) << Name;
  }
  // The pass must actually be live: if every workload came back untouched
  // the layout is silently disabled and the bench above it meaningless.
  EXPECT_GT(TotalMoved, 0u);
}

TEST(OmParallelTest, EmptyProfileLeavesImageByteIdentical) {
  // --layout=hot-cold with a profile that recorded nothing must be a
  // no-op at the byte level, not merely behaviour-preserving: cold-gated
  // alignment and fixup insertion may only trigger in procedures the
  // layout actually processed.
  for (const std::string &Name : wl::workloadNames()) {
    Result<wl::BuiltWorkload> W = wl::buildWorkload(Name);
    ASSERT_TRUE(bool(W)) << Name << ": " << W.message();

    Result<OmResult> Plain =
        wl::linkWithOm(*W, wl::CompileMode::Each, fullSchedOpts());
    ASSERT_TRUE(bool(Plain)) << Name << ": " << Plain.message();

    OmOptions Lay = fullSchedOpts();
    Lay.HotColdLayout = true;
    ASSERT_TRUE(Lay.Profile.empty());
    Result<OmResult> Empty = wl::linkWithOm(*W, wl::CompileMode::Each, Lay);
    ASSERT_TRUE(bool(Empty)) << Name << ": " << Empty.message();

    EXPECT_TRUE(Plain->Image.serialize() == Empty->Image.serialize())
        << Name << ": empty profile changed the image";
    EXPECT_EQ(Empty->Stats.LayoutProcsReordered, 0u) << Name;
    EXPECT_EQ(Empty->Stats.LayoutBlocksMoved, 0u) << Name;
  }
}

TEST(OmParallelTest, ProfileFromDifferentProgramIsSafe) {
  // Feeding workload A's profile into workload B must not corrupt the
  // image: procedures the profile does not match are skipped, and the
  // result still runs to the same answer as the unprofiled link.
  std::vector<std::string> Names = wl::workloadNames();
  ASSERT_GE(Names.size(), 2u);
  Result<wl::BuiltWorkload> A = wl::buildWorkload(Names[0]);
  Result<wl::BuiltWorkload> B = wl::buildWorkload(Names[1]);
  ASSERT_TRUE(bool(A)) << A.message();
  ASSERT_TRUE(bool(B)) << B.message();

  Result<OmResult> ABase =
      wl::linkWithOm(*A, wl::CompileMode::Each, fullSchedOpts());
  ASSERT_TRUE(bool(ABase)) << ABase.message();
  sim::SimConfig ProfCfg;
  ProfCfg.Profile = true;
  Result<sim::SimResult> ARun = sim::run(ABase->Image, ProfCfg);
  ASSERT_TRUE(bool(ARun)) << ARun.message();

  Result<OmResult> BBase =
      wl::linkWithOm(*B, wl::CompileMode::Each, fullSchedOpts());
  ASSERT_TRUE(bool(BBase)) << BBase.message();
  Result<sim::SimResult> BRef = sim::run(BBase->Image);
  ASSERT_TRUE(bool(BRef)) << BRef.message();

  OmOptions Lay = fullSchedOpts();
  Lay.HotColdLayout = true;
  Lay.Profile = ARun->Profile;
  Lay.VerifyEachStage = true;
  Result<OmResult> Mismatched = wl::linkWithOm(*B, wl::CompileMode::Each, Lay);
  ASSERT_TRUE(bool(Mismatched)) << Mismatched.message();
  Result<sim::SimResult> MisRun = sim::run(Mismatched->Image);
  ASSERT_TRUE(bool(MisRun)) << MisRun.message();
  EXPECT_EQ(MisRun->ExitCode, BRef->ExitCode);
  EXPECT_EQ(MisRun->Output, BRef->Output);
}

} // namespace

//===- tests/tools_test.cpp - CLI toolchain integration tests -------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the installed command-line tools (mlc, omlink, aaxrun, aaxdump)
/// through a temp directory: compile sources to .aaxo files, link them
/// standard and with OM, execute both, and verify identical program
/// output plus sane dump contents. The tool paths come from the build
/// system (OM64_TOOLS_DIR).
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <unistd.h>

namespace {

std::string toolsDir() { return OM64_TOOLS_DIR; }

/// Runs a shell command, captures stdout, returns the exit status.
int runCommand(const std::string &Cmd, std::string &Stdout) {
  std::string Full = Cmd + " 2>/dev/null";
  std::FILE *P = popen(Full.c_str(), "r");
  if (!P)
    return -1;
  char Buf[4096];
  Stdout.clear();
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), P)) > 0)
    Stdout.append(Buf, N);
  int Status = pclose(P);
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
}

class ToolchainTest : public ::testing::Test {
protected:
  void SetUp() override {
    Dir = ::testing::TempDir() + "om64_tools_XXXXXX";
    ASSERT_NE(mkdtemp(Dir.data()), nullptr);

    std::ofstream Src(Dir + "/prog.ml");
    Src << R"(
module prog;
import io;
var total: int;
export func accumulate(x: int): int {
  total = total + x * x;
  return total;
}
export func main(): int {
  var i: int;
  i = 1;
  while (i <= 4) {
    accumulate(i);
    i = i + 1;
  }
  io.print_int_ln(total);
  return total & 7;
}
)";
    Src.close();

    std::string Out;
    ASSERT_EQ(runCommand("cd " + Dir + " && " + toolsDir() +
                             "/mlc --emit-runtime . prog.ml",
                         Out),
              0)
        << Out;
  }

  std::string allObjects() const {
    return Dir + "/prog.aaxo " + Dir + "/rt.aaxo " + Dir + "/io.aaxo " +
           Dir + "/mathlib.aaxo " + Dir + "/prng.aaxo " + Dir +
           "/accum.aaxo " + Dir + "/workq.aaxo " + Dir + "/bits.aaxo " +
           Dir + "/fixed.aaxo";
  }

  std::string Dir;
};

TEST_F(ToolchainTest, CompileLinkRunStandard) {
  std::string Out;
  ASSERT_EQ(runCommand(toolsDir() + "/omlink --standard -o " + Dir +
                           "/std.aaxe " + allObjects(),
                       Out),
            0)
      << Out;
  // 1+4+9+16 = 30; exit = 30 & 7 = 6.
  EXPECT_EQ(runCommand(toolsDir() + "/aaxrun " + Dir + "/std.aaxe", Out),
            6);
  EXPECT_EQ(Out, "30\n");
}

TEST_F(ToolchainTest, RunEmitsStatsJson) {
  std::string Out;
  ASSERT_EQ(runCommand(toolsDir() + "/omlink --standard -o " + Dir +
                           "/sj.aaxe " + allObjects(),
                       Out),
            0)
      << Out;
  // JSON on stdout via "-": program output precedes the stats object.
  EXPECT_EQ(runCommand(toolsDir() + "/aaxrun --stats-json - " + Dir +
                           "/sj.aaxe",
                       Out),
            6);
  EXPECT_NE(Out.find("30\n"), std::string::npos);
  EXPECT_NE(Out.find("\"instructions\""), std::string::npos) << Out;
  EXPECT_NE(Out.find("\"class_counts\""), std::string::npos);
  EXPECT_NE(Out.find("\"cycles\""), std::string::npos)
      << "timing runs must include the timing section";

  // And to a file, in functional mode (timing section absent).
  EXPECT_EQ(runCommand(toolsDir() + "/aaxrun --functional --stats-json " +
                           Dir + "/stats.json " + Dir + "/sj.aaxe",
                       Out),
            6);
  std::ifstream F(Dir + "/stats.json");
  std::stringstream SS;
  SS << F.rdbuf();
  EXPECT_NE(SS.str().find("\"simulated_mips\""), std::string::npos);
  EXPECT_NE(SS.str().find("\"timing\": null"), std::string::npos);
}

TEST_F(ToolchainTest, DispatchFlagSelectsACore) {
  std::string Out;
  ASSERT_EQ(runCommand(toolsDir() + "/omlink --standard -o " + Dir +
                           "/dsp.aaxe " + allObjects(),
                       Out),
            0)
      << Out;
  // Both cores run the image to the same exit code and output.
  EXPECT_EQ(runCommand(toolsDir() + "/aaxrun --dispatch=threaded " + Dir +
                           "/dsp.aaxe",
                       Out),
            6);
  EXPECT_EQ(Out, "30\n");
  EXPECT_EQ(runCommand(toolsDir() + "/aaxrun --dispatch=switch " + Dir +
                           "/dsp.aaxe",
                       Out),
            6);
  EXPECT_EQ(Out, "30\n");
  // An unknown mode is a usage error, not a silent default.
  EXPECT_EQ(runCommand(toolsDir() + "/aaxrun --dispatch=bogus " + Dir +
                           "/dsp.aaxe",
                       Out),
            2);
}

TEST_F(ToolchainTest, SuiteModeRunsManyImagesInOrder) {
  std::string Out;
  ASSERT_EQ(runCommand(toolsDir() + "/omlink --standard -o " + Dir +
                           "/s.aaxe " + allObjects(),
                       Out),
            0)
      << Out;
  // Outputs appear in command-line order regardless of --jobs, and the
  // exit code is 0 when every image loads and runs.
  EXPECT_EQ(runCommand(toolsDir() + "/aaxrun --suite --jobs 3 " + Dir +
                           "/s.aaxe " + Dir + "/s.aaxe " + Dir + "/s.aaxe",
                       Out),
            0);
  EXPECT_EQ(Out, "30\n30\n30\n");
  // Per-image stats blocks are keyed by image name.
  EXPECT_EQ(runCommand(toolsDir() + "/aaxrun --suite --stats-json - " +
                           Dir + "/s.aaxe " + Dir + "/s.aaxe",
                       Out),
            0);
  EXPECT_NE(Out.find("\"suite\""), std::string::npos) << Out;
  EXPECT_NE(Out.find("\"exit_code\": 6"), std::string::npos) << Out;
  // Usage errors: several inputs need --suite; suite profiles are
  // ambiguous (a profile keys against one image's procedure table).
  EXPECT_EQ(runCommand(toolsDir() + "/aaxrun " + Dir + "/s.aaxe " + Dir +
                           "/s.aaxe",
                       Out),
            2);
  EXPECT_EQ(runCommand(toolsDir() + "/aaxrun --suite --profile-out=" +
                           Dir + "/p.aaxp " + Dir + "/s.aaxe",
                       Out),
            2);
  // A bad image fails the whole suite with exit 1.
  EXPECT_EQ(runCommand(toolsDir() + "/aaxrun --suite " + Dir +
                           "/s.aaxe " + Dir + "/prog.aaxo",
                       Out),
            1);
}

TEST_F(ToolchainTest, OmLinkMatchesStandardOutput) {
  std::string StdOut, OmOut;
  ASSERT_EQ(runCommand(toolsDir() + "/omlink --standard -o " + Dir +
                           "/std.aaxe " + allObjects(),
                       StdOut),
            0);
  for (const char *Level : {"none", "simple", "full"}) {
    std::string Link;
    ASSERT_EQ(runCommand(toolsDir() + "/omlink -O " + Level + " -o " +
                             Dir + "/om.aaxe " + allObjects(),
                         Link),
              0)
        << Link;
    EXPECT_EQ(runCommand(toolsDir() + "/aaxrun " + Dir + "/std.aaxe",
                         StdOut),
              runCommand(toolsDir() + "/aaxrun " + Dir + "/om.aaxe",
                         OmOut));
    EXPECT_EQ(StdOut, OmOut) << "at -O " << Level;
  }
}

TEST_F(ToolchainTest, VerifyEachStagePassesAtEveryLevel) {
  // omlink --verify-each-stage: OmVerify's structural invariants must
  // hold between every transform stage, and the built-in differential
  // execution must find all four link variants architecturally equal.
  for (const char *Level : {"none", "simple", "full"}) {
    std::string Out;
    ASSERT_EQ(runCommand(toolsDir() + "/omlink --verify-each-stage -O " +
                             Level + " --sched -o " + Dir + "/v.aaxe " +
                             allObjects(),
                         Out),
              0)
        << "at -O " << Level << ": " << Out;
    std::string Run;
    EXPECT_EQ(runCommand(toolsDir() + "/aaxrun " + Dir + "/v.aaxe", Run),
              6);
    EXPECT_EQ(Run, "30\n");
  }
}

TEST_F(ToolchainTest, CompileAllMode) {
  std::string Out;
  ASSERT_EQ(runCommand("cd " + Dir + " && " + toolsDir() +
                           "/mlc --all -o unit.aaxo prog.ml",
                       Out),
            0)
      << Out;
  ASSERT_EQ(runCommand(toolsDir() + "/omlink -O full -o " + Dir +
                           "/all.aaxe " + Dir + "/unit.aaxo " + Dir +
                           "/rt.aaxo " + Dir + "/io.aaxo " + Dir +
                           "/mathlib.aaxo " + Dir + "/prng.aaxo " + Dir +
                           "/accum.aaxo " + Dir + "/workq.aaxo " + Dir +
                           "/bits.aaxo " + Dir + "/fixed.aaxo",
                       Out),
            0)
      << Out;
  EXPECT_EQ(runCommand(toolsDir() + "/aaxrun " + Dir + "/all.aaxe", Out),
            6);
  EXPECT_EQ(Out, "30\n");
}

TEST_F(ToolchainTest, DumpShowsLoaderHints) {
  std::string Out;
  ASSERT_EQ(runCommand(toolsDir() + "/aaxdump " + Dir + "/prog.aaxo", Out),
            0);
  EXPECT_NE(Out.find("LITERAL"), std::string::npos);
  EXPECT_NE(Out.find("LITUSE_JSR"), std::string::npos);
  EXPECT_NE(Out.find("GPDISP"), std::string::npos);
  EXPECT_NE(Out.find("prog.main"), std::string::npos);
  EXPECT_NE(Out.find("jsr ra, (pv)"), std::string::npos);

  ASSERT_EQ(runCommand(toolsDir() + "/omlink -O full -o " + Dir +
                           "/d.aaxe " + allObjects(),
                       Out),
            0);
  ASSERT_EQ(runCommand(toolsDir() + "/aaxdump " + Dir + "/d.aaxe", Out),
            0);
  EXPECT_NE(Out.find("AAX executable"), std::string::npos);
  EXPECT_NE(Out.find("entry"), std::string::npos);
}

TEST_F(ToolchainTest, InstrumentedLinkProfiles) {
  std::string Out;
  ASSERT_EQ(runCommand(toolsDir() + "/omlink -O full --instrument -o " +
                           Dir + "/prof.aaxe " + allObjects(),
                       Out),
            0)
      << Out;
  EXPECT_NE(Out.find("profmap"), std::string::npos);
  // The run still behaves identically.
  EXPECT_EQ(runCommand(toolsDir() + "/aaxrun " + Dir + "/prof.aaxe", Out),
            6);
  EXPECT_EQ(Out, "30\n");
  // The sidecar names every counter.
  std::ifstream Map(Dir + "/prof.aaxe.profmap");
  std::stringstream SS;
  SS << Map.rdbuf();
  EXPECT_NE(SS.str().find("prog.accumulate"), std::string::npos);
}

TEST_F(ToolchainTest, ProfileGuidedRelinkLoop) {
  // The README's three-command loop, with the --flag=value spellings:
  // link, profile under the timing simulator, relink with hot/cold
  // layout, and demand identical program behaviour.
  std::string Out;
  ASSERT_EQ(runCommand(toolsDir() + "/omlink -O full --sched -o " + Dir +
                           "/base.aaxe " + allObjects(),
                       Out),
            0)
      << Out;
  EXPECT_EQ(runCommand(toolsDir() + "/aaxrun --profile-out=" + Dir +
                           "/prog.aaxp " + Dir + "/base.aaxe",
                       Out),
            6);
  EXPECT_EQ(Out, "30\n");

  ASSERT_EQ(runCommand(toolsDir() + "/omlink -O full --sched --profile-in=" +
                           Dir + "/prog.aaxp --layout=hot-cold " +
                           "--stats-json - -o " + Dir + "/opt.aaxe " +
                           allObjects(),
                       Out),
            0)
      << Out;
  EXPECT_NE(Out.find("layout_procs_reordered"), std::string::npos) << Out;
  EXPECT_EQ(runCommand(toolsDir() + "/aaxrun " + Dir + "/opt.aaxe", Out), 6);
  EXPECT_EQ(Out, "30\n");
}

TEST_F(ToolchainTest, LayoutFlagValidation) {
  std::string Out;
  // --layout=hot-cold without a profile is a usage error, not a crash.
  EXPECT_EQ(runCommand(toolsDir() + "/omlink -O full --layout=hot-cold -o " +
                           Dir + "/x.aaxe " + allObjects(),
                       Out),
            2);
  // ... and so is requesting it below OM-full, even with a real profile.
  ASSERT_EQ(runCommand(toolsDir() + "/omlink -O full -o " + Dir +
                           "/base.aaxe " + allObjects(),
                       Out),
            0)
      << Out;
  EXPECT_EQ(runCommand(toolsDir() + "/aaxrun --profile-out=" + Dir +
                           "/p.aaxp " + Dir + "/base.aaxe",
                       Out),
            6);
  EXPECT_EQ(runCommand(toolsDir() + "/omlink -O simple --profile-in=" +
                           Dir + "/p.aaxp --layout=hot-cold -o " + Dir +
                           "/x.aaxe " + allObjects(),
                       Out),
            2);
  // A corrupt profile file is rejected with a diagnostic.
  std::ofstream Bad(Dir + "/bad.aaxp", std::ios::binary);
  Bad << "not a profile";
  Bad.close();
  EXPECT_EQ(runCommand(toolsDir() + "/omlink -O full --profile-in=" + Dir +
                           "/bad.aaxp --layout=hot-cold -o " + Dir +
                           "/x.aaxe " + allObjects(),
                       Out),
            1);
}

TEST_F(ToolchainTest, AnalysisFlagDeletesAndReports) {
  std::string Out;
  ASSERT_EQ(runCommand(toolsDir() + "/omlink -O full --analysis "
                           "--stats-json - -o " +
                           Dir + "/ana.aaxe " + allObjects(),
                       Out),
            0)
      << Out;
  EXPECT_NE(Out.find("analysis_gp_pairs_deleted"), std::string::npos) << Out;
  EXPECT_NE(Out.find("analysis_dead_loads_deleted"), std::string::npos);
  // Program behaviour is unchanged by the extra deletions.
  EXPECT_EQ(runCommand(toolsDir() + "/aaxrun " + Dir + "/ana.aaxe", Out), 6);
  EXPECT_EQ(Out, "30\n");
  // The analysis is an OM-full layer; requesting it lower is a usage error.
  EXPECT_EQ(runCommand(toolsDir() + "/omlink -O simple --analysis -o " +
                           Dir + "/x.aaxe " + allObjects(),
                       Out),
            2);
}

TEST_F(ToolchainTest, LintModeAndStandaloneLinter) {
  std::string Out;
  // Real toolchain output lints clean through both front doors.
  EXPECT_EQ(runCommand(toolsDir() + "/omlink --lint " + allObjects(), Out),
            0)
      << Out;
  EXPECT_EQ(runCommand(toolsDir() + "/aaxlint --werror " + allObjects(),
                       Out),
            0)
      << Out;
  // Lint needs the OM lifter; --standard bypasses it.
  EXPECT_EQ(runCommand(toolsDir() + "/omlink --lint --standard " +
                           allObjects(),
                       Out),
            2);
  // The seeded corpus modules each trip --werror with their code.
  ASSERT_EQ(runCommand(toolsDir() + "/aaxlint --emit-corpus " + Dir +
                           "/corpus",
                       Out),
            0)
      << Out;
  EXPECT_EQ(runCommand(toolsDir() + "/aaxlint --werror " + Dir +
                           "/corpus/L001_uninit_read.aaxo",
                       Out),
            1);
  EXPECT_NE(Out.find("L001:"), std::string::npos) << Out;
  EXPECT_EQ(runCommand(toolsDir() + "/aaxlint --werror " + Dir +
                           "/corpus/clean_clean.aaxo",
                       Out),
            0)
      << Out;
}

/// Counts non-overlapping occurrences of \p Needle in \p Hay.
size_t countOccurrences(const std::string &Hay, const std::string &Needle) {
  size_t N = 0;
  for (size_t At = Hay.find(Needle); At != std::string::npos;
       At = Hay.find(Needle, At + Needle.size()))
    ++N;
  return N;
}

TEST_F(ToolchainTest, LintJsonSarifAndExplainOutputs) {
  std::string Out;
  ASSERT_EQ(runCommand(toolsDir() + "/aaxlint --emit-corpus " + Dir +
                           "/corpus",
                       Out),
            0)
      << Out;

  // --json: machine-readable schema shape with all four keys per finding.
  EXPECT_EQ(runCommand(toolsDir() + "/aaxlint --json " + Dir +
                           "/corpus/L006_stack_oob.aaxo",
                       Out),
            0);
  EXPECT_NE(Out.find("{\"findings\":["), std::string::npos) << Out;
  EXPECT_NE(Out.find("\"code\":\"L006\""), std::string::npos) << Out;
  EXPECT_NE(Out.find("\"proc\":\"lintcase.main\""), std::string::npos)
      << Out;
  EXPECT_NE(Out.find("\"offset\":"), std::string::npos) << Out;
  EXPECT_NE(Out.find("\"message\":"), std::string::npos) << Out;
  // A clean module yields an empty findings array, still valid JSON.
  EXPECT_EQ(runCommand(toolsDir() + "/aaxlint --json " + Dir +
                           "/corpus/clean_clean.aaxo",
                       Out),
            0);
  EXPECT_NE(Out.find("{\"findings\":[]}"), std::string::npos) << Out;

  // --explain: the witness trace follows the finding, numbered from #0.
  EXPECT_EQ(runCommand(toolsDir() + "/aaxlint --explain " + Dir +
                           "/corpus/L008_ra_slot_overwrite.aaxo",
                       Out),
            0);
  EXPECT_NE(Out.find("  #0 "), std::string::npos) << Out;
  EXPECT_NE(Out.find("  #1 "), std::string::npos) << Out;

  // --sarif: valid JSON (json.tool is the arbiter) with one result per
  // corpus finding and the full L001..L010 rule table.
  std::string Sarif = Dir + "/findings.sarif";
  EXPECT_EQ(runCommand(toolsDir() + "/aaxlint --sarif " + Sarif + " " +
                           Dir + "/corpus/L006_stack_oob.aaxo",
                       Out),
            0);
  EXPECT_EQ(runCommand("python3 -m json.tool " + Sarif, Out), 0)
      << "SARIF output is not valid JSON:\n"
      << Out;
  std::ifstream In(Sarif);
  std::stringstream SS;
  SS << In.rdbuf();
  std::string Doc = SS.str();
  EXPECT_NE(Doc.find("\"version\":\"2.1.0\""), std::string::npos) << Doc;
  EXPECT_EQ(countOccurrences(Doc, "\"ruleId\""), 1u) << Doc;
  EXPECT_NE(Doc.find("\"ruleId\":\"L006\""), std::string::npos) << Doc;
  for (unsigned Code = 1; Code <= 10; ++Code) {
    char Id[16];
    std::snprintf(Id, sizeof(Id), "\"id\":\"L%03u\"", Code);
    EXPECT_NE(Doc.find(Id), std::string::npos)
        << "rule table lacks " << Id;
  }
}

TEST_F(ToolchainTest, MegagenGeneratesLinkableDeterministicWorkloads) {
  // The CI scaling smoke in tool form: generate a synthetic many-module
  // workload, link it at -j 1 and -j 4, and demand byte-identical
  // executables that actually run. Generation itself must be
  // deterministic at the file level too.
  std::string Out;
  ASSERT_EQ(runCommand("mkdir -p " + Dir + "/mg1 " + Dir + "/mg2", Out), 0);
  std::string GenFlags =
      " --shape mixed --modules 6 --procs 5 --insts 8000 --seed 7 -o ";
  ASSERT_EQ(runCommand(toolsDir() + "/megagen" + GenFlags + Dir + "/mg1",
                       Out),
            0)
      << Out;
  EXPECT_NE(Out.find("wrote 6 object(s)"), std::string::npos) << Out;
  ASSERT_EQ(runCommand(toolsDir() + "/megagen" + GenFlags + Dir + "/mg2",
                       Out),
            0);
  EXPECT_EQ(runCommand("cmp " + Dir + "/mg1/mg0003.aaxo " + Dir +
                           "/mg2/mg0003.aaxo",
                       Out),
            0)
      << "two identical-spec megagen runs produced different objects";

  ASSERT_EQ(runCommand(toolsDir() + "/omlink -O full --sched -j 1 -o " +
                           Dir + "/mg-j1.aaxe " + Dir + "/mg1/mg*.aaxo",
                       Out),
            0)
      << Out;
  ASSERT_EQ(runCommand(toolsDir() + "/omlink -O full --sched -j 4 -o " +
                           Dir + "/mg-j4.aaxe " + Dir + "/mg1/mg*.aaxo",
                       Out),
            0)
      << Out;
  EXPECT_EQ(runCommand("cmp " + Dir + "/mg-j1.aaxe " + Dir + "/mg-j4.aaxe",
                       Out),
            0)
      << "-j 4 produced a different executable than -j 1";
  // The generated program runs to completion (any exit code; the program
  // computes a layout-independent checksum, not a fixed answer).
  int J1 = runCommand(toolsDir() + "/aaxrun " + Dir + "/mg-j1.aaxe", Out);
  EXPECT_GE(J1, 0);
  EXPECT_EQ(J1, runCommand(toolsDir() + "/aaxrun " + Dir + "/mg-j4.aaxe",
                           Out));

  // Unknown shapes are a usage error, not a crash.
  EXPECT_EQ(runCommand(toolsDir() + "/megagen --shape spiral -o " + Dir,
                       Out),
            2);
}

/// Like runCommand but captures stderr instead of discarding it, for
/// asserting diagnostic text.
int runCommandErr(const std::string &Cmd, std::string &Output) {
  std::string Full = Cmd + " 2>&1";
  std::FILE *P = popen(Full.c_str(), "r");
  if (!P)
    return -1;
  char Buf[4096];
  Output.clear();
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), P)) > 0)
    Output.append(Buf, N);
  int Status = pclose(P);
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
}

TEST_F(ToolchainTest, BadNumericArgsExitTwoWithDiagnostic) {
  // Every tool must reject non-numeric or overflowing numeric arguments
  // with exit code 2 and a diagnostic quoting the bad value — never
  // strtoul-truncate and run anyway.
  struct Case {
    const char *Cmd;
    const char *MustMention;
  };
  const Case Cases[] = {
      {"/omlink -j abc -o /dev/null x.aaxo", "abc"},
      {"/omlink --gat-max 4x -o /dev/null x.aaxo", "4x"},
      {"/omlink -j 18446744073709551616 -o /dev/null x.aaxo",
       "18446744073709551616"},
      {"/megagen --modules 1x", "1x"},
      {"/megagen --seed -o", "-o"},
      {"/aaxrun --max-insts twelve x.aaxe", "twelve"},
      {"/aaxlint --jobs 9e9 x.aaxo", "9e9"},
      {"/omlinkd --socket /tmp/x.sock --max-requests abc", "abc"},
      {"/omlinkd --socket /tmp/x.sock --cache-mb 1x", "1x"},
      {"/omlinkc --socket /tmp/x.sock --gat-max zz -o o.aaxe x.aaxo",
       "zz"},
      {"/omlinkc --socket /tmp/x.sock -j 1.5 -o o.aaxe x.aaxo", "1.5"},
  };
  for (const Case &C : Cases) {
    std::string Out;
    EXPECT_EQ(runCommandErr(toolsDir() + C.Cmd, Out), 2) << C.Cmd;
    EXPECT_NE(Out.find(C.MustMention), std::string::npos)
        << C.Cmd << " diagnostic was: " << Out;
  }
}

TEST_F(ToolchainTest, OmlinkdWarmRelinkMatchesOmlink) {
  std::string Out;
  ASSERT_EQ(runCommand("mkdir -p " + Dir + "/svc", Out), 0);
  ASSERT_EQ(runCommand(toolsDir() + "/megagen --shape mixed --modules 4 "
                           "--procs 6 --insts 6000 --seed 11 -o " +
                           Dir + "/svc",
                       Out),
            0)
      << Out;
  // Socket paths are capped around 108 bytes; gtest temp dirs stay short.
  std::string Sock = Dir + "/d.sock";
  ASSERT_LT(Sock.size(), 100u);
  std::string Objs = Dir + "/svc/mg0000.aaxo " + Dir + "/svc/mg0001.aaxo " +
                     Dir + "/svc/mg0002.aaxo " + Dir + "/svc/mg0003.aaxo";
  std::string LinkFlags = "-O full --sched ";

  // Background daemon, bounded as a safety net against a hung test.
  ASSERT_EQ(runCommand("sh -c '" + toolsDir() + "/omlinkd --socket " +
                           Sock + " --max-requests 8 >" + Dir +
                           "/d.log 2>&1 &'",
                       Out),
            0);
  bool Up = false;
  for (int I = 0; I < 100 && !Up; ++I) {
    Up = runCommand(toolsDir() + "/omlinkc --socket " + Sock + " --ping",
                    Out) == 0;
    if (!Up)
      usleep(100 * 1000);
  }
  ASSERT_TRUE(Up) << "daemon never answered ping";

  // Cold relink == from-scratch omlink.
  ASSERT_EQ(runCommand(toolsDir() + "/omlinkc --socket " + Sock + " " +
                           LinkFlags + "-o " + Dir + "/warm.aaxe " + Objs,
                       Out),
            0)
      << Out;
  ASSERT_EQ(runCommand(toolsDir() + "/omlink " + LinkFlags + "-o " + Dir +
                           "/ref.aaxe " + Objs,
                       Out),
            0)
      << Out;
  EXPECT_EQ(
      runCommand("cmp " + Dir + "/warm.aaxe " + Dir + "/ref.aaxe", Out), 0)
      << "cold daemon link differs from omlink";

  // Edit one module, warm relink, compare against a fresh omlink again.
  ASSERT_EQ(runCommand(toolsDir() + "/megagen --perturb " + Dir +
                           "/svc/mg0001.aaxo --seed 3",
                       Out),
            0)
      << Out;
  ASSERT_EQ(runCommand(toolsDir() + "/omlinkc --socket " + Sock + " " +
                           LinkFlags + "-o " + Dir + "/warm.aaxe " + Objs,
                       Out),
            0)
      << Out;
  EXPECT_NE(Out.find("warm relink, 1/4 modules reparsed"),
            std::string::npos)
      << Out;
  ASSERT_EQ(runCommand(toolsDir() + "/omlink " + LinkFlags + "-o " + Dir +
                           "/ref.aaxe " + Objs,
                       Out),
            0)
      << Out;
  EXPECT_EQ(
      runCommand("cmp " + Dir + "/warm.aaxe " + Dir + "/ref.aaxe", Out), 0)
      << "warm daemon link differs from omlink after an edit";

  EXPECT_EQ(runCommand(toolsDir() + "/omlinkc --socket " + Sock +
                           " --shutdown",
                       Out),
            0)
      << Out;
}

TEST_F(ToolchainTest, BadInputsFailCleanly) {
  std::string Out;
  EXPECT_NE(runCommand(toolsDir() + "/aaxrun " + Dir + "/prog.aaxo", Out),
            0)
      << "running an object file must fail";
  EXPECT_NE(runCommand(toolsDir() + "/omlink -o " + Dir + "/x.aaxe " +
                           Dir + "/prog.aaxo",
                       Out),
            0)
      << "linking without the runtime must report undefined symbols";
  EXPECT_NE(runCommand(toolsDir() + "/aaxdump /dev/null", Out), 0);
}

} // namespace

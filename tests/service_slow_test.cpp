//===- tests/service_slow_test.cpp - Mega-scale relink sweeps -------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Edit-stream sweeps at generated-program scale: a persistent
/// IncrementalLinker replays seeded single-module edits over a
/// 16-module/150k-instruction mixed program and every warm image is
/// compared byte-for-byte against a from-scratch link — at -j1 and -j4,
/// which must also agree with each other (the caches may not change the
/// answer, and neither may the thread count). The analysis configuration
/// additionally sweeps the summary cache's hit path.
///
//===----------------------------------------------------------------------===//

#include "megagen/MegaGen.h"
#include "om/Incremental.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace om64;

namespace {

std::vector<std::vector<uint8_t>> megaModules() {
  megagen::MegaSpec Spec;
  Spec.Modules = 16;
  Spec.ProcsPerModule = 8;
  Spec.TargetInstructions = 150000;
  megagen::MegaProgram MP = megagen::generate(Spec);
  std::vector<std::vector<uint8_t>> Mods;
  for (const obj::ObjectFile &O : MP.Objects)
    Mods.push_back(O.serialize());
  return Mods;
}

std::vector<uint8_t> coldLink(const std::vector<std::vector<uint8_t>> &Mods,
                              const om::OmOptions &Opts) {
  std::vector<obj::ObjectFile> Objs;
  for (const std::vector<uint8_t> &B : Mods) {
    Result<obj::ObjectFile> O = obj::ObjectFile::deserialize(B);
    EXPECT_TRUE(bool(O)) << O.message();
    Objs.push_back(O.take());
  }
  Result<om::OmResult> R = om::optimize(Objs, Opts);
  EXPECT_TRUE(bool(R)) << R.message();
  return R->Image.serialize();
}

void editModule(std::vector<std::vector<uint8_t>> &Mods, size_t Idx,
                uint64_t Seed) {
  Result<obj::ObjectFile> O = obj::ObjectFile::deserialize(Mods[Idx]);
  ASSERT_TRUE(bool(O)) << O.message();
  ASSERT_TRUE(megagen::perturbModule(*O, Seed)) << "module " << Idx;
  Mods[Idx] = O->serialize();
}

/// One warm linker per job count over the same edit stream; asserts both
/// match the from-scratch image at every step.
void sweep(const om::OmOptions &Base, unsigned Edits, uint64_t Seed) {
  std::vector<std::vector<uint8_t>> Mods = megaModules();

  om::OmOptions J1 = Base, J4 = Base;
  J1.Jobs = 1;
  J4.Jobs = 4;
  // Force the parallel path even though this program sits below the
  // serial-fallback cutoff; the sweep is about thread-count identity.
  J4.SerialFallbackInsts = 0;

  om::IncrementalLinker L1(J1), L4(J4);
  for (unsigned E = 0; E <= Edits; ++E) {
    if (E > 0)
      editModule(Mods, (E * 7 + 3) % Mods.size(), Seed + E);
    Result<om::RelinkResult> R1 = L1.relink(Mods);
    Result<om::RelinkResult> R4 = L4.relink(Mods);
    ASSERT_TRUE(bool(R1)) << R1.message();
    ASSERT_TRUE(bool(R4)) << R4.message();
    EXPECT_EQ(R1->Stats.Warm, E > 0);
    EXPECT_EQ(R4->Stats.Warm, E > 0);
    std::vector<uint8_t> Ref = coldLink(Mods, J1);
    EXPECT_EQ(R1->ImageBytes, Ref) << "-j1 differs at edit " << E;
    EXPECT_EQ(R4->ImageBytes, Ref) << "-j4 differs at edit " << E;
  }
}

TEST(ServiceSlowTest, MegaEditStreamWarmEqualsColdBothJobCounts) {
  om::OmOptions Opts;
  Opts.Level = om::OmLevel::Full;
  Opts.Reschedule = true;
  Opts.AlignLoopTargets = true;
  sweep(Opts, /*Edits=*/4, /*Seed=*/500);
}

TEST(ServiceSlowTest, MegaEditStreamWithAnalysis) {
  om::OmOptions Opts;
  Opts.Level = om::OmLevel::Full;
  Opts.Reschedule = true;
  Opts.AlignLoopTargets = true;
  Opts.Analysis = true;
  sweep(Opts, /*Edits=*/3, /*Seed=*/900);
}

} // namespace

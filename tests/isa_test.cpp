//===- tests/isa_test.cpp - AAX ISA unit tests ----------------------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#include "isa/Disassembler.h"
#include "isa/Inst.h"
#include "isa/Registers.h"

#include "support/Random.h"

#include <gtest/gtest.h>

using namespace om64;
using namespace om64::isa;

namespace {

/// Builds a representative instruction of each opcode with nontrivial
/// operand values.
Inst sampleInst(Opcode Op, uint64_t Seed) {
  DetRandom Rng(Seed);
  uint8_t Ra = static_cast<uint8_t>(Rng.nextBelow(31)); // avoid zero reg
  uint8_t Rb = static_cast<uint8_t>(Rng.nextBelow(31));
  uint8_t Rc = static_cast<uint8_t>(Rng.nextBelow(31));
  switch (classOf(Op)) {
  case InstClass::Pal:
    return makePal(PalFunc::PutInt);
  case InstClass::LoadAddress:
  case InstClass::IntLoad:
  case InstClass::IntStore:
  case InstClass::FpLoad:
  case InstClass::FpStore:
    return makeMem(Op, Ra, static_cast<int32_t>(Rng.nextInRange(-32768,
                                                                32767)),
                   Rb);
  case InstClass::Jump:
    return makeJump(Op, Ra, Rb);
  case InstClass::Branch:
    return makeBranch(Op, Ra,
                      static_cast<int32_t>(Rng.nextInRange(-(1 << 20),
                                                           (1 << 20) - 1)));
  case InstClass::IntOp:
    if (Rng.chance(1, 2))
      return makeOpLit(Op, Ra, static_cast<uint8_t>(Rng.nextBelow(256)),
                       Rc);
    return makeOp(Op, Ra, Rb, Rc);
  case InstClass::FpOp:
  case InstClass::Transfer:
    return makeOp(Op, Ra, Rb, Rc);
  }
  return Inst::nop();
}

class RoundTripTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(RoundTripTest, EncodeDecodeIsIdentity) {
  Opcode Op = static_cast<Opcode>(GetParam());
  for (uint64_t Seed = 1; Seed <= 24; ++Seed) {
    Inst I = sampleInst(Op, Seed * 7919);
    uint32_t Word = encode(I);
    std::optional<Inst> Back = decode(Word);
    ASSERT_TRUE(Back.has_value())
        << "opcode " << opcodeName(Op) << " failed to decode";
    // PAL/jump instructions normalize some unused fields; compare the
    // re-encoding instead of raw struct equality.
    EXPECT_EQ(encode(*Back), Word) << opcodeName(Op);
    EXPECT_EQ(Back->Op, I.Op);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, RoundTripTest,
                         ::testing::Range(0u, NumOpcodes));

TEST(IsaTest, DecodeRejectsGarbage) {
  // Primary opcode 0x3C is unassigned.
  EXPECT_FALSE(decode(0x3Cu << 26).has_value());
  // Operate group with an unassigned function code.
  EXPECT_FALSE(decode((0x10u << 26) | (0x7Fu << 5)).has_value());
  // Jump with kind 3.
  EXPECT_FALSE(decode((0x1Au << 26) | (3u << 14)).has_value());
}

TEST(IsaTest, NopIdentification) {
  EXPECT_TRUE(Inst::nop().isNop());
  EXPECT_TRUE(makeOp(Opcode::Addq, T0, T1, Zero).isNop());
  EXPECT_TRUE(makeMem(Opcode::Lda, Zero, 4, SP).isNop());
  EXPECT_FALSE(makeMem(Opcode::Ldq, Zero, 0, SP).isNop()) <<
      "a load to the zero register still touches memory";
  EXPECT_FALSE(makeOp(Opcode::Bis, T0, T0, T1).isNop());
  EXPECT_FALSE(makeBranch(Opcode::Br, Zero, 0).isNop());
}

TEST(IsaTest, SplitDisp32RoundTrips) {
  DetRandom Rng(99);
  for (int Trial = 0; Trial < 2000; ++Trial) {
    int64_t V = Rng.nextInRange(-(1ll << 31) + 0x8000, (1ll << 31) - 0x8000);
    int32_t High, Low;
    splitDisp32(V, High, Low);
    EXPECT_TRUE(fitsDisp16(Low));
    EXPECT_EQ((static_cast<int64_t>(High) << 16) + Low, V);
  }
  int32_t High, Low;
  splitDisp32(0x7FFF, High, Low);
  EXPECT_EQ(High, 0);
  EXPECT_EQ(Low, 0x7FFF);
  splitDisp32(0x8000, High, Low);
  EXPECT_EQ(High, 1);
  EXPECT_EQ(Low, -0x8000);

  // Values far outside 32 bits must be rejected, including the extremes
  // where naive high-part arithmetic overflows or truncates.
  EXPECT_FALSE(fitsDisp32(INT64_MAX));
  EXPECT_FALSE(fitsDisp32(INT64_MIN));
  EXPECT_FALSE(fitsDisp32(1ll << 61));
  EXPECT_FALSE(fitsDisp32(-(1ll << 61)));
  EXPECT_FALSE(fitsDisp32((1ll << 45)));
  EXPECT_TRUE(fitsDisp32((1ll << 31) - 0x8001));
  EXPECT_TRUE(fitsDisp32(-(1ll << 31)));
}

TEST(IsaTest, DisplacementPredicates) {
  EXPECT_TRUE(fitsDisp16(32767));
  EXPECT_TRUE(fitsDisp16(-32768));
  EXPECT_FALSE(fitsDisp16(32768));
  EXPECT_FALSE(fitsDisp16(-32769));
  EXPECT_TRUE(fitsBranchDisp((1 << 20) - 1));
  EXPECT_TRUE(fitsBranchDisp(-(1 << 20)));
  EXPECT_FALSE(fitsBranchDisp(1 << 20));
}

TEST(IsaTest, RegUnitsReadWrite) {
  // Global fetch: ldq t0, 0(t0) reads t0, writes t0.
  Inst Load = makeMem(Opcode::Ldq, T0, 0, T0);
  unsigned Units[3];
  ASSERT_EQ(regUnitsRead(Load, Units), 1u);
  EXPECT_EQ(Units[0], intUnit(T0));
  EXPECT_EQ(regUnitWritten(Load), intUnit(T0));

  // Stores write nothing.
  EXPECT_EQ(regUnitWritten(makeMem(Opcode::Stq, T0, 0, SP)), ~0u);

  // FP load writes an fp unit.
  EXPECT_EQ(regUnitWritten(makeMem(Opcode::Ldt, 10, 0, SP)), fpUnit(10));

  // Zero-register destinations report no write.
  EXPECT_EQ(regUnitWritten(makeOp(Opcode::Addq, T0, T1, Zero)), ~0u);

  // Transfers cross files.
  Inst Itoft = makeOp(Opcode::Itoft, T2, Zero, 5);
  ASSERT_EQ(regUnitsRead(Itoft, Units), 1u);
  EXPECT_EQ(Units[0], intUnit(T2));
  EXPECT_EQ(regUnitWritten(Itoft), fpUnit(5));

  // Conditional fp branches read the fp register file.
  Inst Fb = makeBranch(Opcode::Fbne, 7, 12);
  ASSERT_EQ(regUnitsRead(Fb, Units), 1u);
  EXPECT_EQ(Units[0], fpUnit(7));
}

TEST(IsaTest, LatenciesAreSane) {
  EXPECT_EQ(latencyOf(Opcode::Addq), 1u);
  EXPECT_EQ(latencyOf(Opcode::Ldq), 3u);
  EXPECT_GT(latencyOf(Opcode::Mulq), latencyOf(Opcode::Addq));
  EXPECT_GT(latencyOf(Opcode::Divt), latencyOf(Opcode::Mult));
}

TEST(IsaTest, ClassificationHelpers) {
  EXPECT_TRUE(isLoad(Opcode::Ldl));
  EXPECT_TRUE(isLoad(Opcode::Ldt));
  EXPECT_FALSE(isLoad(Opcode::Lda)) << "LDA is not a memory access";
  EXPECT_TRUE(isStore(Opcode::Stt));
  EXPECT_TRUE(isCondBranch(Opcode::Beq));
  EXPECT_FALSE(isCondBranch(Opcode::Br));
  EXPECT_TRUE(isTerminator(Opcode::Ret));
  EXPECT_TRUE(isTerminator(Opcode::CallPal));
  EXPECT_FALSE(isTerminator(Opcode::Cmpeq));
  EXPECT_TRUE(writesReturnAddress(Opcode::Bsr));
  EXPECT_FALSE(writesReturnAddress(Opcode::Beq));
}

TEST(DisassemblerTest, RendersCommonForms) {
  EXPECT_EQ(disassemble(makeMem(Opcode::Ldq, T0, 188, GP)),
            "ldq t0, 188(gp)");
  EXPECT_EQ(disassemble(makeMem(Opcode::Ldah, GP, 8192, PV)),
            "ldah gp, 8192(pv)");
  EXPECT_EQ(disassemble(makeJump(Opcode::Jsr, RA, PV)), "jsr ra, (pv)");
  EXPECT_EQ(disassemble(Inst::nop()), "nop");
  EXPECT_EQ(disassemble(makeOpLit(Opcode::Cmpeq, T1, 7, T2)),
            "cmpeq t1, 7, t2");
  EXPECT_EQ(disassemble(makeOp(Opcode::Addt, 1, 2, 3)),
            "addt f1, f2, f3");
}

TEST(DisassemblerTest, BranchTargetsUseSymbolizer) {
  DisasmContext Ctx;
  Ctx.Pc = 0x120000000;
  Ctx.HavePc = true;
  Ctx.Symbolize = [](uint64_t Addr) {
    return Addr == 0x120000010 ? std::string("t.main") : std::string();
  };
  Inst Br = makeBranch(Opcode::Bsr, RA, 3); // 0x120000000+4+12
  EXPECT_EQ(disassemble(Br, Ctx), "bsr ra, t.main");
}

TEST(DisassemblerTest, RegionRendering) {
  std::vector<uint32_t> Words = {encode(Inst::nop()),
                                 encode(makeMem(Opcode::Ldq, T0, 8, GP))};
  std::string Text = disassembleRegion(Words, 0x120000000);
  EXPECT_NE(Text.find("nop"), std::string::npos);
  EXPECT_NE(Text.find("ldq t0, 8(gp)"), std::string::npos);
  EXPECT_NE(Text.find("0x0000000120000004"), std::string::npos);
}

} // namespace

//===- tests/sim_test.cpp - Simulator semantics and timing tests ----------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "sim/SimStats.h"
#include "sim/SuiteRunner.h"

#include <gtest/gtest.h>

#include <optional>

using namespace om64;
using namespace om64::isa;
using namespace om64::test;

namespace {

/// Runs raw code that leaves its result in v0 and halts by returning.
int64_t runForV0(std::vector<Inst> Code, bool Timing = false) {
  Code.push_back(makeJump(Opcode::Ret, Zero, RA));
  obj::Image Img = makeRawImage(Code);
  sim::SimConfig Cfg;
  Cfg.Timing = Timing;
  Result<sim::SimResult> R = sim::run(Img, Cfg);
  EXPECT_TRUE(bool(R)) << (R ? "" : R.message());
  return R ? R->ExitCode : -999;
}

/// Materializes a 64-bit constant into \p Dest (test-only helper mirroring
/// codegen's strategy but always via lda/ldah/shifts).
void emitConst(std::vector<Inst> &Code, uint8_t Dest, int64_t V) {
  if (fitsDisp16(V)) {
    Code.push_back(makeMem(Opcode::Lda, Dest, static_cast<int32_t>(V),
                           Zero));
    return;
  }
  // Build from 16-bit pieces: seed with the top half, then shift-or the
  // remaining three halves (lda sign-extends, so mask pieces to 16 bits).
  Code.push_back(makeMem(Opcode::Lda, Dest,
                         static_cast<int16_t>(V >> 48), Zero));
  for (int Piece = 2; Piece >= 0; --Piece) {
    Code.push_back(makeOpLit(Opcode::Sll, Dest, 16, Dest));
    int32_t Half = static_cast<int32_t>((V >> (16 * Piece)) & 0xFFFF);
    if (Half) {
      Code.push_back(makeMem(Opcode::Lda, AT,
                             static_cast<int16_t>(Half), Zero));
      Code.push_back(makeOpLit(Opcode::Sll, AT, 48, AT));
      Code.push_back(makeOpLit(Opcode::Srl, AT, 48, AT));
      Code.push_back(makeOp(Opcode::Bis, Dest, AT, Dest));
    }
  }
}

struct IntOpCase {
  Opcode Op;
  int64_t A;
  int64_t B;
  int64_t Expected;
};

class IntOpTest : public ::testing::TestWithParam<IntOpCase> {};

TEST_P(IntOpTest, ComputesExpected) {
  const IntOpCase &C = GetParam();
  std::vector<Inst> Code;
  emitConst(Code, T0, C.A);
  emitConst(Code, T1, C.B);
  Code.push_back(makeOp(C.Op, T0, T1, V0));
  EXPECT_EQ(runForV0(Code), C.Expected) << opcodeName(C.Op);
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, IntOpTest,
    ::testing::Values(
        IntOpCase{Opcode::Addq, 5, 9, 14},
        IntOpCase{Opcode::Addq, -5, 3, -2},
        IntOpCase{Opcode::Subq, 5, 9, -4},
        IntOpCase{Opcode::Mulq, -7, 6, -42},
        IntOpCase{Opcode::S4addq, 5, 3, 23},
        IntOpCase{Opcode::S8addq, 5, 3, 43},
        IntOpCase{Opcode::Cmpeq, 4, 4, 1},
        IntOpCase{Opcode::Cmpeq, 4, 5, 0},
        IntOpCase{Opcode::Cmplt, -1, 0, 1},
        IntOpCase{Opcode::Cmplt, 0, -1, 0},
        IntOpCase{Opcode::Cmple, 3, 3, 1},
        IntOpCase{Opcode::Cmpult, -1, 0, 0}, // unsigned: ~0 > 0
        IntOpCase{Opcode::And, 12, 10, 8},
        IntOpCase{Opcode::Bic, 12, 10, 4},
        IntOpCase{Opcode::Bis, 12, 10, 14},
        IntOpCase{Opcode::Ornot, 8, -1, 8},
        IntOpCase{Opcode::Xor, 12, 10, 6},
        IntOpCase{Opcode::Sll, 3, 4, 48},
        IntOpCase{Opcode::Srl, -1, 60, 15},
        IntOpCase{Opcode::Sra, -16, 2, -4}));

TEST(SimTest, LiteralOperandsAreZeroExtended) {
  std::vector<Inst> Code;
  Code.push_back(makeOpLit(Opcode::Addq, Zero, 255, V0));
  EXPECT_EQ(runForV0(Code), 255);
}

TEST(SimTest, LdaLdahSemantics) {
  std::vector<Inst> Code;
  Code.push_back(makeMem(Opcode::Lda, T0, -4, Zero));
  Code.push_back(makeMem(Opcode::Ldah, T0, 2, T0));
  Code.push_back(makeOp(Opcode::Bis, T0, T0, V0));
  EXPECT_EQ(runForV0(Code), (2 << 16) - 4);
}

TEST(SimTest, MemoryRoundTripAndLdlSignExtend) {
  std::vector<Inst> Code;
  emitConst(Code, T0, -2);                     // 0xFFFF...FE
  Code.push_back(makeMem(Opcode::Stq, T0, 16, SP));
  Code.push_back(makeMem(Opcode::Ldl, V0, 16, SP)); // low 32 bits, sext
  EXPECT_EQ(runForV0(Code), -2);

  std::vector<Inst> Code2;
  emitConst(Code2, T0, 0x7FFFFFFF);
  Code2.push_back(makeMem(Opcode::Stl, T0, 24, SP));
  Code2.push_back(makeMem(Opcode::Ldl, V0, 24, SP));
  EXPECT_EQ(runForV0(Code2), 0x7FFFFFFF);
}

TEST(SimTest, UnalignedAccessFaults) {
  std::vector<Inst> Code;
  Code.push_back(makeMem(Opcode::Ldq, V0, 4, SP)); // SP-512 is 16-aligned
  Code.push_back(makeMem(Opcode::Ldq, V0, 1, SP));
  Code.push_back(makeJump(Opcode::Ret, Zero, RA));
  Result<sim::SimResult> R = sim::run(makeRawImage(Code));
  EXPECT_FALSE(bool(R));
  EXPECT_NE(R.message().find("bad 8-byte load"), std::string::npos);
}

TEST(SimTest, StoreToTextFaults) {
  std::vector<Inst> Code;
  Code.push_back(makeOp(Opcode::Bis, Zero, Zero, T0));
  Code.push_back(makeMem(Opcode::Ldah, T0, 0x1200, T0));
  Code.push_back(makeOpLit(Opcode::Sll, T0, 4, T0)); // 0x120000000
  Code.push_back(makeMem(Opcode::Stq, Zero, 0, T0));
  Code.push_back(makeJump(Opcode::Ret, Zero, RA));
  Result<sim::SimResult> R = sim::run(makeRawImage(Code));
  EXPECT_FALSE(bool(R));
}

TEST(SimTest, BranchesAndConditions) {
  // v0 = (t0 < 0) ? 11 : 22 via blt.
  for (int64_t X : {-5, 0, 5}) {
    std::vector<Inst> Code;
    emitConst(Code, T0, X);
    Code.push_back(makeBranch(Opcode::Blt, T0, 2));       // skip 2
    Code.push_back(makeMem(Opcode::Lda, V0, 22, Zero));
    Code.push_back(makeBranch(Opcode::Br, Zero, 1));
    Code.push_back(makeMem(Opcode::Lda, V0, 11, Zero));
    int64_t Expected = X < 0 ? 11 : 22;
    EXPECT_EQ(runForV0(Code), Expected) << "X=" << X;
  }
}

TEST(SimTest, BsrRetLinkage) {
  // main saves the halt address, calls a leaf via BSR (clobbering RA),
  // adds 1 to the leaf's return value, and exits through the saved
  // address; exercises the link-register plumbing calls rely on.
  std::vector<Inst> Code;
  Code.push_back(makeOp(Opcode::Bis, RA, RA, S0)); // save halt address
  Code.push_back(makeBranch(Opcode::Bsr, RA, 2));  // -> index 4
  Code.push_back(makeOpLit(Opcode::Addq, V0, 1, V0));
  Code.push_back(makeJump(Opcode::Ret, Zero, S0)); // exit with v0 = 8
  Code.push_back(makeMem(Opcode::Lda, V0, 7, Zero)); // leaf
  Code.push_back(makeJump(Opcode::Ret, Zero, RA));
  obj::Image Img = makeRawImage(Code);
  sim::SimConfig Cfg;
  Cfg.Timing = false;
  Result<sim::SimResult> R = sim::run(Img, Cfg);
  ASSERT_TRUE(bool(R)) << R.message();
  EXPECT_EQ(R->ExitCode, 8);
}

TEST(SimTest, FpArithmeticAndConversion) {
  // v0 = trunc((2.0 + 3.0) * 4.0 / 8.0) = 2 via cvtqt/cvttq round trip.
  std::vector<Inst> Code;
  Code.push_back(makeMem(Opcode::Lda, T0, 2, Zero));
  Code.push_back(makeOp(Opcode::Itoft, T0, Zero, 1));
  Code.push_back(makeOp(Opcode::Cvtqt, FZero, 1, 1)); // f1 = 2.0
  Code.push_back(makeMem(Opcode::Lda, T0, 3, Zero));
  Code.push_back(makeOp(Opcode::Itoft, T0, Zero, 2));
  Code.push_back(makeOp(Opcode::Cvtqt, FZero, 2, 2)); // f2 = 3.0
  Code.push_back(makeOp(Opcode::Addt, 1, 2, 3));      // 5.0
  Code.push_back(makeOp(Opcode::Addt, 3, 3, 4));      // 10.0 (x2)
  Code.push_back(makeOp(Opcode::Addt, 4, 4, 4));      // 20.0 (x4 total)
  Code.push_back(makeOp(Opcode::Mult, 1, 2, 5));      // 6.0
  Code.push_back(makeOp(Opcode::Divt, 4, 5, 6));      // 20/6 = 3.33..
  Code.push_back(makeOp(Opcode::Cvttq, FZero, 6, 7));
  Code.push_back(makeOp(Opcode::Ftoit, 7, Zero, V0)); // trunc -> 3
  EXPECT_EQ(runForV0(Code), 3);
}

TEST(SimTest, FpComparesProduceTwoPointZero) {
  std::vector<Inst> Code;
  Code.push_back(makeMem(Opcode::Lda, T0, 1, Zero));
  Code.push_back(makeOp(Opcode::Itoft, T0, Zero, 1));
  Code.push_back(makeOp(Opcode::Cvtqt, FZero, 1, 1)); // 1.0
  Code.push_back(makeOp(Opcode::Cmptlt, 31, 1, 2));   // 0.0 < 1.0 -> 2.0
  Code.push_back(makeOp(Opcode::Cvttq, FZero, 2, 3));
  Code.push_back(makeOp(Opcode::Ftoit, 3, Zero, V0));
  EXPECT_EQ(runForV0(Code), 2);
}

TEST(SimTest, PalOutputStream) {
  std::vector<Inst> Code;
  Code.push_back(makeMem(Opcode::Lda, A0, 65, Zero)); // 'A'
  Code.push_back(makePal(PalFunc::PutChar));
  Code.push_back(makeMem(Opcode::Lda, A0, -42, Zero));
  Code.push_back(makePal(PalFunc::PutInt));
  Code.push_back(makeMem(Opcode::Lda, A0, 3, Zero));
  Code.push_back(makePal(PalFunc::Halt));
  Result<sim::SimResult> R = sim::run(makeRawImage(Code));
  ASSERT_TRUE(bool(R)) << R.message();
  EXPECT_EQ(R->Output, "A-42");
  EXPECT_EQ(R->ExitCode, 3);
}

TEST(SimTest, RunawayGuard) {
  std::vector<Inst> Code;
  Code.push_back(makeBranch(Opcode::Br, Zero, -1)); // infinite loop
  obj::Image Img = makeRawImage(Code);
  sim::SimConfig Cfg;
  Cfg.MaxInstructions = 1000;
  Result<sim::SimResult> R = sim::run(Img, Cfg);
  EXPECT_FALSE(bool(R));
  EXPECT_NE(R.message().find("budget"), std::string::npos);
}

TEST(SimTest, TimingCountsDualIssueAndStalls) {
  // Independent pair at an aligned address should dual-issue.
  std::vector<Inst> Code;
  Code.push_back(makeMem(Opcode::Lda, T0, 1, Zero));
  Code.push_back(makeMem(Opcode::Lda, T1, 2, Zero));
  Code.push_back(makeOp(Opcode::Addq, T0, T1, V0));
  Code.push_back(makeJump(Opcode::Ret, Zero, RA));
  obj::Image Img = makeRawImage(Code);
  Result<sim::SimResult> R = sim::run(Img);
  ASSERT_TRUE(bool(R)) << R.message();
  EXPECT_EQ(R->ExitCode, 3);
  EXPECT_GE(R->DualIssuePairs, 1u);

  // A load-use chain must cost at least the load-use latency.
  std::vector<Inst> Chain;
  Chain.push_back(makeMem(Opcode::Ldq, T0, 0, SP));
  Chain.push_back(makeOpLit(Opcode::Addq, T0, 1, V0));
  Chain.push_back(makeJump(Opcode::Ret, Zero, RA));
  Result<sim::SimResult> C = sim::run(makeRawImage(Chain));
  ASSERT_TRUE(bool(C)) << C.message();
  EXPECT_GE(C->Cycles, 3u + 20u /* first-touch D-cache miss */);
  EXPECT_EQ(C->DCacheMisses, 1u);
}

TEST(SimTest, TimingChargesCacheMisses) {
  // Touch 1024 distinct lines twice: first pass misses, second hits.
  std::vector<Inst> Code;
  Code.push_back(makeMem(Opcode::Lda, T0, 0, Zero));       // i = 0
  Code.push_back(makeMem(Opcode::Lda, T2, 1024, Zero));    // limit
  // loop: t1 = sp - i*32... simpler: ldq from stack base + (i & 15)*32.
  Code.push_back(makeOpLit(Opcode::And, T0, 127, T1));
  Code.push_back(makeOpLit(Opcode::Sll, T1, 5, T1));
  Code.push_back(makeOp(Opcode::Subq, SP, T1, T1));
  Code.push_back(makeMem(Opcode::Ldq, T3, -8, T1));
  Code.push_back(makeOpLit(Opcode::Addq, T0, 1, T0));
  Code.push_back(makeOp(Opcode::Cmplt, T0, T2, T4));
  Code.push_back(makeBranch(Opcode::Bne, T4, -7));
  Code.push_back(makeJump(Opcode::Ret, Zero, RA));
  Result<sim::SimResult> R = sim::run(makeRawImage(Code));
  ASSERT_TRUE(bool(R)) << R.message();
  // 128 distinct lines, each missing exactly once.
  EXPECT_EQ(R->DCacheMisses, 128u);
}

TEST(SimTest, WraparoundAddressFaultsCleanly) {
  // LDQ v0, -8(zero) computes address 2^64 - 8; the naive bounds check
  // "Addr + Size <= end" wraps to 0 and passes, indexing the data segment
  // ~2^63 bytes out of bounds. The overflow-safe checks must fault.
  for (Opcode Op : {Opcode::Ldq, Opcode::Ldl}) {
    std::vector<Inst> Code;
    Code.push_back(makeMem(Op, V0, -8, Zero));
    Code.push_back(makeJump(Opcode::Ret, Zero, RA));
    sim::SimConfig Cfg;
    Cfg.Timing = false;
    Result<sim::SimResult> R = sim::run(makeRawImage(Code), Cfg);
    ASSERT_FALSE(bool(R)) << opcodeName(Op);
    EXPECT_NE(R.message().find("byte load"), std::string::npos)
        << R.message();
  }
  // Same for the store path.
  std::vector<Inst> Code;
  Code.push_back(makeMem(Opcode::Stq, V0, -8, Zero));
  Code.push_back(makeJump(Opcode::Ret, Zero, RA));
  Result<sim::SimResult> R = sim::run(makeRawImage(Code));
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.message().find("byte store"), std::string::npos);
}

TEST(SimTest, DegenerateCacheGeometryIsRejected) {
  std::vector<Inst> Code;
  Code.push_back(makeMem(Opcode::Lda, V0, 1, Zero));
  Code.push_back(makeJump(Opcode::Ret, Zero, RA));
  obj::Image Img = makeRawImage(Code);

  // Zero line size would divide by zero in Cache construction.
  sim::SimConfig Cfg;
  Cfg.ICache.LineBytes = 0;
  Result<sim::SimResult> R = sim::run(Img, Cfg);
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.message().find("cache geometry"), std::string::npos)
      << R.message();

  // SizeBytes < LineBytes leaves zero lines: `line % NumLines` would be
  // a divide by zero on the first access.
  Cfg = sim::SimConfig();
  Cfg.DCache.SizeBytes = 16;
  Cfg.DCache.LineBytes = 32;
  R = sim::run(Img, Cfg);
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.message().find("cache geometry"), std::string::npos);

  // Functional mode never touches the caches, so a bogus geometry must
  // not prevent a functional run.
  Cfg.Timing = false;
  R = sim::run(Img, Cfg);
  ASSERT_TRUE(bool(R)) << R.message();
  EXPECT_EQ(R->ExitCode, 1);
}

TEST(SimTest, ProfileCountsSizedToDeclaredCounters) {
  // Counter 2 executes; counter 7 is declared in text but never reached.
  // The counter vector is sized to the image's declared extent up front
  // (no unbounded mid-run resize), so both indices are present.
  std::vector<Inst> Code;
  Code.push_back(makePalCount(2));
  Code.push_back(makeMem(Opcode::Lda, A0, 0, Zero));
  Code.push_back(makePal(PalFunc::Halt));
  Code.push_back(makePalCount(7)); // dead code past the halt
  Result<sim::SimResult> R = sim::run(makeRawImage(Code));
  ASSERT_TRUE(bool(R)) << R.message();
  ASSERT_EQ(R->ProfileCounts.size(), 8u);
  EXPECT_EQ(R->ProfileCounts[2], 1u);
  EXPECT_EQ(R->ProfileCounts[7], 0u);
}

TEST(SimTest, UndecodableTextIsRejectedUpFront) {
  // The whole text segment is validated at startup, so junk words are
  // rejected even when control flow never reaches them.
  std::vector<Inst> Code;
  Code.push_back(makeMem(Opcode::Lda, A0, 0, Zero));
  Code.push_back(makePal(PalFunc::Halt));
  obj::Image Img = makeRawImage(Code);
  uint32_t Junk = 0xF0000000; // primary opcode 0x3C: unassigned
  for (unsigned B = 0; B < 4; ++B)
    Img.Text.push_back(static_cast<uint8_t>(Junk >> (8 * B)));
  Result<sim::SimResult> R = sim::run(Img);
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.message().find("undecodable"), std::string::npos)
      << R.message();
}

TEST(SimTest, MisalignedEntryIsRejected) {
  std::vector<Inst> Code;
  Code.push_back(makeMem(Opcode::Lda, A0, 0, Zero));
  Code.push_back(makePal(PalFunc::Halt));
  obj::Image Img = makeRawImage(Code);
  Img.Entry = Img.TextBase + 2;
  Result<sim::SimResult> R = sim::run(Img);
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.message().find("entry"), std::string::npos);
}

TEST(SimTest, StatsHistogramAndMips) {
  // 3 load-addresses, 1 int-op, 1 store, 1 load, 1 jump.
  std::vector<Inst> Code;
  Code.push_back(makeMem(Opcode::Lda, T0, 7, Zero));
  Code.push_back(makeMem(Opcode::Lda, T1, 5, Zero));
  Code.push_back(makeOp(Opcode::Addq, T0, T1, V0));
  Code.push_back(makeMem(Opcode::Stq, V0, 16, SP));
  Code.push_back(makeMem(Opcode::Ldq, V0, 16, SP));
  Code.push_back(makeMem(Opcode::Lda, T2, 0, Zero));
  Code.push_back(makeJump(Opcode::Ret, Zero, RA));
  sim::SimConfig Cfg;
  Cfg.Timing = false;
  Result<sim::SimResult> R = sim::run(makeRawImage(Code), Cfg);
  ASSERT_TRUE(bool(R)) << R.message();
  EXPECT_EQ(R->ExitCode, 12);

  auto count = [&](InstClass C) {
    return R->ClassCounts[static_cast<unsigned>(C)];
  };
  EXPECT_EQ(count(InstClass::LoadAddress), 3u);
  EXPECT_EQ(count(InstClass::IntOp), 1u);
  EXPECT_EQ(count(InstClass::IntStore), 1u);
  EXPECT_EQ(count(InstClass::IntLoad), 1u);
  EXPECT_EQ(count(InstClass::Jump), 1u);
  uint64_t Total = 0;
  for (uint64_t N : R->ClassCounts)
    Total += N;
  EXPECT_EQ(Total, R->Instructions);
  EXPECT_GE(R->HostSeconds, 0.0);

  std::string Text = sim::statsText(*R, /*Timing=*/false);
  EXPECT_NE(Text.find("load-address"), std::string::npos);
  EXPECT_NE(Text.find("simulated MIPS"), std::string::npos);
  std::string Json = sim::statsJson(*R, /*Timing=*/false);
  EXPECT_NE(Json.find("\"instructions\": 7"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"timing\": null"), std::string::npos);

  // Timing runs render the cycle/cache section in both formats.
  Result<sim::SimResult> T = sim::run(makeRawImage(Code));
  ASSERT_TRUE(bool(T)) << T.message();
  EXPECT_NE(sim::statsText(*T, true).find("D-cache"), std::string::npos);
  EXPECT_NE(sim::statsJson(*T, true).find("\"cycles\""),
            std::string::npos);
}

TEST(SimTest, FunctionalModeReportsNoCycles) {
  std::vector<Inst> Code;
  Code.push_back(makeMem(Opcode::Lda, V0, 1, Zero));
  Code.push_back(makeJump(Opcode::Ret, Zero, RA));
  sim::SimConfig Cfg;
  Cfg.Timing = false;
  Result<sim::SimResult> R = sim::run(makeRawImage(Code), Cfg);
  ASSERT_TRUE(bool(R)) << R.message();
  EXPECT_EQ(R->Cycles, 0u);
  EXPECT_EQ(R->Instructions, 2u);
}

//===----------------------------------------------------------------------===//
// Dispatch parity: the computed-goto threaded core versus the legacy
// switch core. Every opcode class and every fault path must produce a
// bit-identical SimResult (or an identical fault message) on both.
//===----------------------------------------------------------------------===//

sim::SimConfig coreConfig(sim::DispatchMode Mode, uint64_t MaxInsts) {
  sim::SimConfig Cfg;
  Cfg.Timing = false;
  Cfg.Dispatch = Mode;
  Cfg.MaxInstructions = MaxInsts;
  return Cfg;
}

/// Runs \p Img through both functional cores and demands identical
/// results. Returns the threaded-core result when both runs succeeded.
std::optional<sim::SimResult>
expectDispatchParity(const obj::Image &Img, const std::string &What,
                     uint64_t MaxInsts = 1u << 20) {
  Result<sim::SimResult> T =
      sim::run(Img, coreConfig(sim::DispatchMode::Threaded, MaxInsts));
  Result<sim::SimResult> S =
      sim::run(Img, coreConfig(sim::DispatchMode::Switch, MaxInsts));
  EXPECT_EQ(bool(T), bool(S))
      << What << ": one core faulted and the other did not: "
      << (T ? S.message() : T.message());
  if (!T || !S) {
    if (!T && !S) {
      EXPECT_EQ(T.message(), S.message()) << What;
    }
    return std::nullopt;
  }
  EXPECT_EQ(T->ExitCode, S->ExitCode) << What;
  EXPECT_EQ(T->Output, S->Output) << What;
  EXPECT_EQ(T->Instructions, S->Instructions) << What;
  EXPECT_EQ(T->Nops, S->Nops) << What;
  EXPECT_EQ(T->Loads, S->Loads) << What;
  EXPECT_EQ(T->Stores, S->Stores) << What;
  EXPECT_EQ(T->TakenBranches, S->TakenBranches) << What;
  EXPECT_EQ(T->ClassCounts, S->ClassCounts) << What;
  EXPECT_EQ(T->FinalData, S->FinalData) << What;
  EXPECT_EQ(T->ProfileCounts, S->ProfileCounts) << What;
  return *T;
}

/// One straight-line program exercising every instruction class: PAL
/// output/counters, load-addresses, int/fp memory, jumps, taken and
/// fall-through branches, every operate family, transfers, and nops.
std::vector<Inst> allClassProgram() {
  std::vector<Inst> Code;
  Code.push_back(makeOp(Opcode::Bis, RA, RA, S0)); // save halt address
  emitConst(Code, T0, 13);
  emitConst(Code, T1, 5);

  // Every integer operate, register and literal forms, results folded
  // into an accumulator so nothing is dead.
  const Opcode IntOps[] = {
      Opcode::Addq, Opcode::Subq,  Opcode::Mulq, Opcode::S4addq,
      Opcode::S8addq, Opcode::Cmpeq, Opcode::Cmplt, Opcode::Cmple,
      Opcode::Cmpult, Opcode::And, Opcode::Bic,  Opcode::Bis,
      Opcode::Ornot, Opcode::Xor,  Opcode::Sll,  Opcode::Srl,
      Opcode::Sra};
  for (Opcode Op : IntOps) {
    Code.push_back(makeOp(Op, T0, T1, T2));
    Code.push_back(makeOp(Opcode::Xor, T3, T2, T3));
    Code.push_back(makeOpLit(Op, T0, 3, T2));
    Code.push_back(makeOp(Opcode::Xor, T3, T2, T3));
  }
  // Zero-register destinations execute as nops on both cores.
  Code.push_back(Inst::nop());
  Code.push_back(makeOp(Opcode::Addq, T0, T1, Zero));

  // Int memory round trips (stack and data segment, via GP).
  Code.push_back(makeMem(Opcode::Stq, T3, 16, SP));
  Code.push_back(makeMem(Opcode::Ldq, T4, 16, SP));
  Code.push_back(makeMem(Opcode::Stl, T0, 24, SP));
  Code.push_back(makeMem(Opcode::Ldl, T5, 24, SP));
  Code.push_back(makeMem(Opcode::Stq, T3, 64, GP));
  Code.push_back(makeMem(Opcode::Ldq, T6, 64, GP));

  // FP pipeline: build 13.0 and 5.0, push them through every fp operate,
  // store/load through memory, and round the quotient back to an int.
  Code.push_back(makeOp(Opcode::Itoft, T0, Zero, 1));
  Code.push_back(makeOp(Opcode::Cvtqt, FZero, 1, 1)); // f1 = 13.0
  Code.push_back(makeOp(Opcode::Itoft, T1, Zero, 2));
  Code.push_back(makeOp(Opcode::Cvtqt, FZero, 2, 2)); // f2 = 5.0
  Code.push_back(makeOp(Opcode::Addt, 1, 2, 3));
  Code.push_back(makeOp(Opcode::Subt, 1, 2, 4));
  Code.push_back(makeOp(Opcode::Mult, 1, 2, 5));
  Code.push_back(makeOp(Opcode::Divt, 1, 2, 6));
  Code.push_back(makeOp(Opcode::Cmpteq, 1, 2, 7));
  Code.push_back(makeOp(Opcode::Cmptlt, 2, 1, 8));
  Code.push_back(makeOp(Opcode::Cmptle, 1, 1, 9));
  Code.push_back(makeOp(Opcode::Cpys, 4, 6, 10));
  Code.push_back(makeMem(Opcode::Stt, 10, 32, SP));
  Code.push_back(makeMem(Opcode::Ldt, 11, 32, SP));
  Code.push_back(makeOp(Opcode::Cvttq, FZero, 11, 12));
  Code.push_back(makeOp(Opcode::Ftoit, 12, Zero, T2));
  Code.push_back(makeOp(Opcode::Xor, T3, T2, T3));

  // Conditional branches: a taken and a fall-through flavour of each
  // direction, plus the fp pair (f1 = 13.0 is nonzero, f13 stays +0.0).
  Code.push_back(makeBranch(Opcode::Beq, T0, 1)); // not taken (t0 = 13)
  Code.push_back(makeBranch(Opcode::Bne, T0, 1)); // taken, skips the nop
  Code.push_back(Inst::nop());
  Code.push_back(makeBranch(Opcode::Blt, T0, 1)); // not taken
  Code.push_back(makeBranch(Opcode::Ble, T0, 1)); // not taken
  Code.push_back(makeBranch(Opcode::Bgt, T0, 1)); // taken
  Code.push_back(Inst::nop());
  Code.push_back(makeBranch(Opcode::Bge, T0, 1)); // taken
  Code.push_back(Inst::nop());
  Code.push_back(makeBranch(Opcode::Fbeq, 1, 1)); // not taken (13.0)
  Code.push_back(makeBranch(Opcode::Fbne, 1, 1)); // taken
  Code.push_back(Inst::nop());
  Code.push_back(makeBranch(Opcode::Fbeq, 13, 1)); // taken (+0.0)
  Code.push_back(Inst::nop());
  Code.push_back(makeBranch(Opcode::Br, Zero, 1)); // unconditional
  Code.push_back(Inst::nop());

  // Jumps: BSR to a leaf that returns (RET), then a JSR through a
  // register address computed from a zero-displacement BSR's link value.
  Code.push_back(makeBranch(Opcode::Bsr, RA, 4)); // -> leaf below
  Code.push_back(makeOp(Opcode::Xor, T3, V0, T3));
  Code.push_back(makeBranch(Opcode::Bsr, T4, 0)); // t4 = next address
  Code.push_back(makeOpLit(Opcode::Addq, T4, 16, T4));
  Code.push_back(makeJump(Opcode::Jsr, T5, T4)); // skips the leaf + ret
  Code.push_back(makeMem(Opcode::Lda, V0, 7, Zero)); // leaf
  Code.push_back(makeJump(Opcode::Ret, Zero, RA));

  // PAL services: the output stream, the cycle counter, and profile
  // counters (declared twice, hit once each).
  Code.push_back(makeMem(Opcode::Lda, A0, 80, Zero)); // 'P'
  Code.push_back(makePal(PalFunc::PutChar));
  Code.push_back(makeMem(Opcode::Lda, A0, -7, Zero));
  Code.push_back(makePal(PalFunc::PutInt));
  Code.push_back(makeOp(Opcode::Cpys, 6, 6, 16)); // fa0 = 13.0/5.0
  Code.push_back(makePal(PalFunc::PutReal));
  Code.push_back(makePal(PalFunc::CycleCount)); // v0 = insts so far
  Code.push_back(makeOp(Opcode::Xor, T3, V0, T3));
  Code.push_back(makePalCount(0));
  Code.push_back(makePalCount(1));

  // Exit through JMP to the saved halt address with a data-derived code.
  Code.push_back(makeOpLit(Opcode::And, T3, 63, V0));
  Code.push_back(makeJump(Opcode::Jmp, Zero, S0));
  return Code;
}

TEST(DispatchParityTest, EveryOpcodeClassAgrees) {
  std::optional<sim::SimResult> R =
      expectDispatchParity(makeRawImage(allClassProgram()), "all-classes");
  ASSERT_TRUE(R.has_value());
  // The program genuinely exercised every class, so the parity above
  // compared a fully populated histogram.
  for (unsigned C = 0; C < NumInstClasses; ++C)
    EXPECT_GT(R->ClassCounts[C], 0u)
        << "class " << instClassName(static_cast<InstClass>(C))
        << " never executed";
  EXPECT_FALSE(R->Output.empty());
  EXPECT_GT(R->Nops, 0u);
}

TEST(DispatchParityTest, EveryFaultPathAgrees) {
  struct FaultCase {
    const char *Name;
    std::vector<Inst> Code;
    uint64_t MaxInsts;
  };
  std::vector<FaultCase> Cases;
  auto add = [&Cases](const char *Name, std::vector<Inst> Code,
                      uint64_t MaxInsts = 1u << 20) {
    Cases.push_back({Name, std::move(Code), MaxInsts});
  };

  // Misalignment, one per access width and direction (fp included).
  add("unaligned-ldq", {makeMem(Opcode::Ldq, V0, 1, SP)});
  add("unaligned-ldl", {makeMem(Opcode::Ldl, V0, 2, SP)});
  add("unaligned-stq", {makeMem(Opcode::Stq, V0, 1, SP)});
  add("unaligned-stl", {makeMem(Opcode::Stl, V0, 2, SP)});
  add("unaligned-ldt", {makeMem(Opcode::Ldt, 1, 4, SP)});
  add("unaligned-stt", {makeMem(Opcode::Stt, 1, 4, SP)});

  // Bounds, including the 2^64 wraparound corner.
  add("oob-load-wrap", {makeMem(Opcode::Ldq, V0, -8, Zero)});
  add("oob-store-wrap", {makeMem(Opcode::Stq, V0, -8, Zero)});
  add("oob-load-low", {makeMem(Opcode::Ldq, V0, 0, Zero)});
  {
    // Store into the text segment (read-only by construction).
    std::vector<Inst> Code;
    Code.push_back(makeOp(Opcode::Bis, Zero, Zero, T0));
    Code.push_back(makeMem(Opcode::Ldah, T0, 0x1200, T0));
    Code.push_back(makeOpLit(Opcode::Sll, T0, 4, T0));
    Code.push_back(makeMem(Opcode::Stq, Zero, 0, T0));
    add("store-to-text", std::move(Code));
  }

  // Control flow escaping the text segment.
  add("fall-off-end", {makeMem(Opcode::Lda, V0, 1, Zero)});
  add("br-before-text", {makeBranch(Opcode::Br, Zero, -5)});
  add("br-past-end", {makeBranch(Opcode::Br, Zero, 100)});
  {
    std::vector<Inst> Code;
    emitConst(Code, T0, 0x5000);
    Code.push_back(makeJump(Opcode::Jsr, RA, T0));
    add("jump-out-of-range", std::move(Code));
  }
  {
    std::vector<Inst> Code;
    emitConst(Code, T0, 1);
    Code.push_back(makeBranch(Opcode::Bne, T0, -100));
    add("taken-cond-out-of-range", std::move(Code));
  }

  // Resource limits and PAL misuse.
  add("budget-exceeded", {makeBranch(Opcode::Br, Zero, -1)}, 100);
  add("unknown-pal", {makePal(static_cast<PalFunc>(99))});

  for (FaultCase &C : Cases) {
    std::optional<sim::SimResult> R = expectDispatchParity(
        makeRawImage(C.Code), C.Name, C.MaxInsts);
    EXPECT_FALSE(R.has_value()) << C.Name << " did not fault";
  }
}

TEST(DispatchParityTest, EveryIntOpAgreesOnEdgeOperands) {
  // Sweep every integer operate over sign/magnitude edge cases in both
  // register and literal form; the two cores must agree exactly.
  const Opcode IntOps[] = {
      Opcode::Addq, Opcode::Subq,  Opcode::Mulq, Opcode::S4addq,
      Opcode::S8addq, Opcode::Cmpeq, Opcode::Cmplt, Opcode::Cmple,
      Opcode::Cmpult, Opcode::And, Opcode::Bic,  Opcode::Bis,
      Opcode::Ornot, Opcode::Xor,  Opcode::Sll,  Opcode::Srl,
      Opcode::Sra};
  const int64_t As[] = {0, -1, 13, static_cast<int64_t>(0x8000000000000000ull)};
  for (Opcode Op : IntOps) {
    for (int64_t A : As) {
      std::vector<Inst> Code;
      emitConst(Code, T0, A);
      emitConst(Code, T1, 3);
      Code.push_back(makeOp(Op, T0, T1, T2));
      Code.push_back(makeOpLit(Op, T0, 255, T3));
      Code.push_back(makeOp(Opcode::Xor, T2, T3, V0));
      Code.push_back(makeJump(Opcode::Ret, Zero, RA));
      expectDispatchParity(makeRawImage(Code),
                           std::string(opcodeName(Op)) + "/A=" +
                               std::to_string(A));
    }
  }
}

TEST(SuiteRunnerTest, ParallelAndSerialRunsAreIdentical) {
  // The suite runner's determinism contract: the same job list must
  // produce identical result slots at any thread count, including the
  // serial fallback, with failures staying in their own slots.
  std::vector<Inst> Good = allClassProgram();
  std::vector<Inst> Faulty = {makeMem(Opcode::Ldq, V0, 1, SP)};
  obj::Image GoodImg = makeRawImage(Good);
  obj::Image FaultImg = makeRawImage(Faulty);

  std::vector<sim::SuiteJob> Jobs;
  for (sim::DispatchMode Mode :
       {sim::DispatchMode::Threaded, sim::DispatchMode::Switch}) {
    sim::SimConfig Cfg = coreConfig(Mode, 1u << 20);
    Jobs.push_back({"good", &GoodImg, Cfg});
    Jobs.push_back({"fault", &FaultImg, Cfg});
    Jobs.push_back({"good2", &GoodImg, Cfg});
  }

  std::vector<sim::SuiteJobResult> Serial = sim::runSuite(Jobs, 1);
  std::vector<sim::SuiteJobResult> Parallel = sim::runSuite(Jobs, 4);
  ASSERT_EQ(Serial.size(), Jobs.size());
  ASSERT_EQ(Parallel.size(), Jobs.size());
  for (size_t I = 0; I < Jobs.size(); ++I) {
    EXPECT_EQ(Serial[I].Name, Jobs[I].Name);
    EXPECT_EQ(Parallel[I].Name, Jobs[I].Name);
    EXPECT_EQ(Serial[I].Ok, Parallel[I].Ok) << Jobs[I].Name;
    EXPECT_EQ(Serial[I].Error, Parallel[I].Error) << Jobs[I].Name;
    const sim::SimResult &A = Serial[I].Result;
    const sim::SimResult &B = Parallel[I].Result;
    EXPECT_EQ(A.ExitCode, B.ExitCode) << Jobs[I].Name;
    EXPECT_EQ(A.Output, B.Output) << Jobs[I].Name;
    EXPECT_EQ(A.Instructions, B.Instructions) << Jobs[I].Name;
    EXPECT_EQ(A.ClassCounts, B.ClassCounts) << Jobs[I].Name;
    EXPECT_EQ(A.FinalData, B.FinalData) << Jobs[I].Name;
  }
  // The good jobs faulted nowhere and the faulty ones everywhere.
  EXPECT_TRUE(Serial[0].Ok);
  EXPECT_FALSE(Serial[1].Ok);
  EXPECT_NE(Serial[1].Error.find("load"), std::string::npos);
}

} // namespace

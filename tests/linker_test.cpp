//===- tests/linker_test.cpp - Traditional linker tests -------------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <set>

using namespace om64;
using namespace om64::obj;
using namespace om64::test;

namespace {

std::vector<ObjectFile> buildObjects(const std::string &Source) {
  lang::Program P = parseProgram({{"t", Source}});
  return compileAll(P);
}

constexpr const char *TwoGlobalsSource = R"(
module t;
import io;
var a: int;
var b: int;
export func main(): int {
  a = 3;
  b = 4;
  io.print_int(a + b);
  return 0;
}
)";

TEST(LinkerTest, ProducesRunnableImage) {
  Result<Image> Img = lnk::link(buildObjects(TwoGlobalsSource));
  ASSERT_TRUE(bool(Img)) << Img.message();
  EXPECT_NE(Img->Entry, 0u);
  EXPECT_GT(Img->GatSize, 0u);
  Result<sim::SimResult> R = sim::run(*Img);
  ASSERT_TRUE(bool(R)) << R.message();
  EXPECT_EQ(R->Output, "7");
}

TEST(LinkerTest, UndefinedSymbolIsAnError) {
  lang::Program P = parseProgram({{"t", TwoGlobalsSource}});
  cg::CompileOptions Opts;
  Result<ObjectFile> O = cg::compileUnit(P, {"t"}, Opts);
  ASSERT_TRUE(bool(O)) << O.message();
  // Link without the runtime: io.print_int is unresolved.
  Result<Image> Img = lnk::link({*O});
  ASSERT_FALSE(bool(Img));
  EXPECT_NE(Img.message().find("undefined symbol"), std::string::npos);
  EXPECT_NE(Img.message().find("io.print_int"), std::string::npos);
}

TEST(LinkerTest, DuplicateExportIsAnError) {
  lang::Program P = parseProgram(
      {{"a", "module a;\nexport func f(): int { return 1; }"},
       {"b", "module b;\nexport func f(): int { return 2; }"}},
      /*WithRuntime=*/false);
  cg::CompileOptions Opts;
  Result<ObjectFile> OA = cg::compileUnit(P, {"a"}, Opts);
  Result<ObjectFile> OB = cg::compileUnit(P, {"b"}, Opts);
  ASSERT_TRUE(bool(OA) && bool(OB));
  // Rename b's export to collide with a's.
  for (Symbol &S : OB->Symbols)
    if (S.Name == "b.f")
      S.Name = "a.f";
  Result<Image> Img = lnk::link({*OA, *OB});
  ASSERT_FALSE(bool(Img));
  EXPECT_NE(Img.message().find("multiply-defined"), std::string::npos);
}

TEST(LinkerTest, MissingMainIsAnError) {
  lang::Program P = parseProgram(
      {{"a", "module a;\nexport func f(): int { return 1; }"}},
      /*WithRuntime=*/false);
  cg::CompileOptions Opts;
  Result<ObjectFile> O = cg::compileUnit(P, {"a"}, Opts);
  ASSERT_TRUE(bool(O));
  Result<Image> Img = lnk::link({*O});
  ASSERT_FALSE(bool(Img));
  EXPECT_NE(Img.message().find("main"), std::string::npos);
}

TEST(LinkerTest, GatMergingDeduplicatesAcrossModules) {
  // Two modules both call io.print_int and reference the same exported
  // global; the merged GAT holds one entry for each distinct address.
  lang::Program P = parseProgram({{"a", R"(
module a;
import io;
import b;
export func main(): int {
  io.print_int(b.get());
  io.print_int(b.shared);
  return 0;
}
)"},
                                  {"b", R"(
module b;
import io;
export var shared: int;
export func get(): int {
  io.print_int(shared);
  return shared + 1;
}
)"}});
  std::vector<ObjectFile> Objs = compileAll(P);
  Result<Image> Img = lnk::link(Objs);
  ASSERT_TRUE(bool(Img)) << Img.message();

  // Count distinct values stored in the GAT region; each address appears
  // exactly once ("removing duplicate addresses", section 2).
  std::set<uint64_t> Values;
  for (uint64_t Off = 0; Off < Img->GatSize; Off += 8) {
    uint64_t V = 0;
    for (unsigned B = 0; B < 8; ++B)
      V |= static_cast<uint64_t>(
               Img->Data[Img->GatBase - Img->DataBase + Off + B])
           << (8 * B);
    EXPECT_TRUE(Values.insert(V).second)
        << "duplicate GAT value " << std::hex << V;
  }
  Result<sim::SimResult> R = sim::run(*Img);
  ASSERT_TRUE(bool(R)) << R.message();
  EXPECT_EQ(R->Output, "010");
}

TEST(LinkerTest, MultiGatSplittingStillRuns) {
  // Force several GP groups by capping each group's GAT at 4 entries;
  // every module's GP-relative addressing must still resolve, and
  // behaviour must be identical.
  std::vector<ObjectFile> Objs = buildObjects(TwoGlobalsSource);
  lnk::LinkOptions Opts;
  Opts.MaxGatEntriesPerGroup = 4;
  Result<Image> Split = lnk::link(Objs, Opts);
  ASSERT_TRUE(bool(Split)) << Split.message();

  // More than one GP value exists.
  std::set<uint64_t> GpValues;
  for (const ImageProc &Proc : Split->Procs)
    GpValues.insert(Proc.GpValue);
  EXPECT_GT(GpValues.size(), 1u);

  Result<sim::SimResult> R = sim::run(*Split);
  ASSERT_TRUE(bool(R)) << R.message();
  EXPECT_EQ(R->Output, "7");
}

TEST(LinkerTest, ModuleOrderPreservedInDataLayout) {
  // The traditional linker lays data out in module order (sorting near
  // the GAT is OM's improvement, not the baseline's).
  std::vector<ObjectFile> Objs = buildObjects(TwoGlobalsSource);
  Result<Image> Img = lnk::link(Objs);
  ASSERT_TRUE(bool(Img)) << Img.message();
  uint64_t AddrA = 0, AddrB = 0;
  for (const ImageSymbol &S : Img->Symbols) {
    if (S.Name == "t.a")
      AddrA = S.Addr;
    if (S.Name == "t.b")
      AddrB = S.Addr;
  }
  ASSERT_NE(AddrA, 0u);
  ASSERT_NE(AddrB, 0u);
  EXPECT_EQ(AddrB, AddrA + 8) << "declaration order preserved";
}

TEST(LinkerTest, ImageCarriesProcedureGpValues) {
  std::vector<ObjectFile> Objs = buildObjects(TwoGlobalsSource);
  Result<Image> Img = lnk::link(Objs);
  ASSERT_TRUE(bool(Img)) << Img.message();
  ASSERT_FALSE(Img->Procs.empty());
  for (const ImageProc &Proc : Img->Procs) {
    EXPECT_GE(Proc.GpValue, Img->DataBase);
    EXPECT_GE(Proc.Entry, Img->TextBase);
    EXPECT_LT(Proc.Entry, Img->TextBase + Img->Text.size());
  }
  EXPECT_EQ(Img->InitialGp, Img->Procs.front().GpValue);
}

TEST(LinkerTest, WholeSuiteLinksInBothModes) {
  for (const char *Name : {"ear", "sc"}) {
    Result<wl::BuiltWorkload> W = wl::buildWorkload(Name);
    ASSERT_TRUE(bool(W)) << W.message();
    for (wl::CompileMode Mode :
         {wl::CompileMode::Each, wl::CompileMode::All}) {
      Result<Image> Img = wl::linkBaseline(*W, Mode);
      EXPECT_TRUE(bool(Img)) << (Img ? "" : Img.message());
    }
  }
}

} // namespace

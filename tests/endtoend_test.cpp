//===- tests/endtoend_test.cpp - Whole-suite soundness and shape tests ----===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property tests over the 19 SPEC92-shaped workloads: every OM variant
/// must preserve program behaviour bit-for-bit, and the static statistics
/// must have the monotone structure the paper reports (full removes at
/// least what simple removes, the GAT only shrinks, text only shrinks,
/// etc.).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "om/Verify.h"
#include "sim/SuiteRunner.h"

#include <gtest/gtest.h>

#include <map>

using namespace om64;
using namespace om64::test;

namespace {

/// Builds (and caches) a workload plus its baseline runs.
class SuiteFixture {
public:
  static SuiteFixture &get(const std::string &Name) {
    static std::map<std::string, SuiteFixture> Cache;
    auto It = Cache.find(Name);
    if (It == Cache.end())
      It = Cache.emplace(Name, SuiteFixture(Name)).first;
    return It->second;
  }

  explicit SuiteFixture(const std::string &Name) {
    Result<wl::BuiltWorkload> B = wl::buildWorkload(Name);
    if (!B) {
      BuildError = B.message();
      return;
    }
    Built = B.take();
    // Link both baselines first, then run them concurrently through the
    // suite runner (job order = mode order, so the caching is
    // deterministic regardless of which run finishes first).
    const wl::CompileMode Modes[] = {wl::CompileMode::Each,
                                     wl::CompileMode::All};
    std::vector<obj::Image> Images;
    for (wl::CompileMode Mode : Modes) {
      Result<obj::Image> Img = wl::linkBaseline(*Built, Mode);
      if (!Img) {
        BuildError = Img.message();
        return;
      }
      Images.push_back(Img.take());
    }
    std::vector<sim::SuiteJob> Jobs;
    for (size_t I = 0; I < Images.size(); ++I)
      Jobs.push_back({I == 0 ? "each" : "all", &Images[I], sim::SimConfig{}});
    std::vector<sim::SuiteJobResult> Runs = sim::runSuite(Jobs);
    for (size_t I = 0; I < Runs.size(); ++I) {
      if (!Runs[I].Ok) {
        BuildError = Runs[I].Error;
        return;
      }
      BaselineOutput[Modes[I]] = Runs[I].Result.Output;
      BaselineCycles[Modes[I]] = Runs[I].Result.Cycles;
    }
  }

  std::optional<wl::BuiltWorkload> Built;
  std::string BuildError;
  std::map<wl::CompileMode, std::string> BaselineOutput;
  std::map<wl::CompileMode, uint64_t> BaselineCycles;
};

struct VariantParam {
  std::string Workload;
  wl::CompileMode Mode;
  om::OmLevel Level;
  bool Sched;
};

std::string paramName(const ::testing::TestParamInfo<VariantParam> &Info) {
  std::string N = Info.param.Workload;
  N += Info.param.Mode == wl::CompileMode::Each ? "_each" : "_all";
  N += std::string("_") + om::levelName(Info.param.Level);
  if (Info.param.Sched)
    N += "_sched";
  return N;
}

class OmSoundnessTest : public ::testing::TestWithParam<VariantParam> {};

TEST_P(OmSoundnessTest, OutputIdenticalToBaseline) {
  const VariantParam &P = GetParam();
  SuiteFixture &F = SuiteFixture::get(P.Workload);
  ASSERT_TRUE(F.Built.has_value()) << F.BuildError;

  om::OmOptions Opts;
  Opts.Level = P.Level;
  Opts.Reschedule = P.Sched;
  Opts.AlignLoopTargets = P.Sched;
  // OmVerify: every transform stage must leave the symbolic form
  // structurally consistent on every workload variant.
  Opts.VerifyEachStage = true;
  Result<om::OmResult> R = wl::linkWithOm(*F.Built, P.Mode, Opts);
  ASSERT_TRUE(bool(R)) << R.message();
  EXPECT_FALSE(bool(R->Image.verify()))
      << R->Image.verify().message();
  Result<sim::SimResult> Run = sim::run(R->Image);
  ASSERT_TRUE(bool(Run)) << Run.message();
  EXPECT_EQ(Run->Output, F.BaselineOutput[P.Mode]);
  EXPECT_EQ(Run->ExitCode, 0);
}

std::vector<VariantParam> allVariants() {
  std::vector<VariantParam> Params;
  for (const std::string &Name : wl::workloadNames())
    for (wl::CompileMode Mode :
         {wl::CompileMode::Each, wl::CompileMode::All}) {
      Params.push_back({Name, Mode, om::OmLevel::Simple, false});
      Params.push_back({Name, Mode, om::OmLevel::Full, false});
      Params.push_back({Name, Mode, om::OmLevel::Full, true});
    }
  return Params;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, OmSoundnessTest,
                         ::testing::ValuesIn(allVariants()), paramName);

class DifferentialTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DifferentialTest, ArchitecturalResultsAgreeAcrossLevels) {
  // OmVerify's differential-execution layer: link each workload at
  // OM-none/simple/full/full+sched with per-stage invariant checks on,
  // execute all four, and demand identical exit code, output, and
  // canonical memory hash.
  const std::string &Name = GetParam();
  SuiteFixture &F = SuiteFixture::get(Name);
  ASSERT_TRUE(F.Built.has_value()) << F.BuildError;

  for (wl::CompileMode Mode :
       {wl::CompileMode::Each, wl::CompileMode::All}) {
    om::OmOptions Base;
    Base.VerifyEachStage = true;
    Result<om::DifferentialReport> Rep =
        om::runDifferential(F.Built->linkSet(Mode), Base);
    ASSERT_TRUE(bool(Rep)) << Name << ": " << Rep.message();
    ASSERT_EQ(Rep->Legs.size(), 4u);
    // The reference leg reproduces the independently linked baseline.
    EXPECT_EQ(Rep->Legs[0].Output, F.BaselineOutput[Mode]);
    EXPECT_EQ(Rep->Legs[0].ExitCode, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, DifferentialTest,
                         ::testing::ValuesIn(wl::workloadNames()),
                         [](const ::testing::TestParamInfo<std::string> &I) {
                           return I.param;
                         });

class SuiteShapeTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SuiteShapeTest, StatisticsHaveThePaperStructure) {
  const std::string &Name = GetParam();
  SuiteFixture &F = SuiteFixture::get(Name);
  ASSERT_TRUE(F.Built.has_value()) << F.BuildError;

  for (wl::CompileMode Mode :
       {wl::CompileMode::Each, wl::CompileMode::All}) {
    om::OmOptions NoneOpts, SimpleOpts, FullOpts;
    NoneOpts.Level = om::OmLevel::None;
    SimpleOpts.Level = om::OmLevel::Simple;
    FullOpts.Level = om::OmLevel::Full;
    Result<om::OmResult> None = wl::linkWithOm(*F.Built, Mode, NoneOpts);
    Result<om::OmResult> Simple = wl::linkWithOm(*F.Built, Mode, SimpleOpts);
    Result<om::OmResult> Full = wl::linkWithOm(*F.Built, Mode, FullOpts);
    ASSERT_TRUE(bool(None) && bool(Simple) && bool(Full));

    const om::OmStats &N = None->Stats;
    const om::OmStats &S = Simple->Stats;
    const om::OmStats &L = Full->Stats;

    // Totals agree across levels.
    EXPECT_EQ(S.AddressLoadsTotal, N.AddressLoadsTotal);
    EXPECT_EQ(L.CallsTotal, N.CallsTotal);
    EXPECT_GT(N.AddressLoadsTotal, 0u);
    EXPECT_GT(N.CallsTotal, 0u);

    // Baseline removes nothing.
    EXPECT_EQ(N.AddressLoadsConverted + N.AddressLoadsNullified, 0u);

    // OM-full eliminates at least as many address loads as OM-simple,
    // and both eliminate something (Figure 3).
    uint64_t SimpleGone = S.AddressLoadsConverted + S.AddressLoadsNullified;
    uint64_t FullGone = L.AddressLoadsConverted + L.AddressLoadsNullified;
    EXPECT_GT(SimpleGone, 0u);
    EXPECT_GE(FullGone, SimpleGone);

    // Figure 4 structure: bookkeeping only decreases with effort.
    EXPECT_LE(S.CallsNeedingGpReset, N.CallsNeedingGpReset);
    EXPECT_LE(L.CallsNeedingGpReset, S.CallsNeedingGpReset);
    EXPECT_LE(S.CallsNeedingPvLoad, N.CallsNeedingPvLoad);
    EXPECT_LE(L.CallsNeedingPvLoad, S.CallsNeedingPvLoad);

    // Figure 5: simple nullifies without deleting; full deletes.
    EXPECT_EQ(S.InstructionsDeleted, 0u);
    EXPECT_EQ(S.TextBytesAfter, N.TextBytesAfter);
    EXPECT_GT(L.InstructionsDeleted, 0u);
    EXPECT_LT(L.TextBytesAfter, N.TextBytesAfter);

    // Section 5.1: the GAT shrinks substantially under OM-full.
    EXPECT_EQ(S.GatBytesAfter, S.GatBytesBefore)
        << "OM-simple does not reduce the GAT";
    EXPECT_LT(L.GatBytesAfter, L.GatBytesBefore);
  }
}

TEST_P(SuiteShapeTest, DynamicCyclesImproveOnAverageShape) {
  // Per-program dynamic checks: OM-full runs no more instructions than
  // the baseline, and nop counts reflect the level (simple executes nops,
  // full deletes them).
  const std::string &Name = GetParam();
  SuiteFixture &F = SuiteFixture::get(Name);
  ASSERT_TRUE(F.Built.has_value()) << F.BuildError;

  om::OmOptions SimpleOpts, FullOpts;
  SimpleOpts.Level = om::OmLevel::Simple;
  FullOpts.Level = om::OmLevel::Full;
  Result<om::OmResult> Simple =
      wl::linkWithOm(*F.Built, wl::CompileMode::Each, SimpleOpts);
  Result<om::OmResult> Full =
      wl::linkWithOm(*F.Built, wl::CompileMode::Each, FullOpts);
  ASSERT_TRUE(bool(Simple) && bool(Full));

  Result<sim::SimResult> SimpleRun = sim::run(Simple->Image);
  Result<sim::SimResult> FullRun = sim::run(Full->Image);
  ASSERT_TRUE(bool(SimpleRun) && bool(FullRun));

  EXPECT_GT(SimpleRun->Nops, 0u)
      << "OM-simple replaces instructions with no-ops that still execute";
  EXPECT_LT(FullRun->Instructions, SimpleRun->Instructions)
      << "OM-full deletes what OM-simple could only nullify";
  EXPECT_LE(FullRun->Cycles, F.BaselineCycles[wl::CompileMode::Each])
      << "OM-full should not be slower on " << Name;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, SuiteShapeTest,
                         ::testing::ValuesIn(wl::workloadNames()),
                         [](const ::testing::TestParamInfo<std::string> &I) {
                           return I.param;
                         });

TEST(SuiteTest, WorkloadRegistryIsComplete) {
  // 19 programs: SPEC92 minus gcc, as in the paper.
  EXPECT_EQ(wl::workloadNames().size(), 19u);
  for (const std::string &Name : wl::workloadNames())
    EXPECT_FALSE(wl::workloadSources(Name).empty()) << Name;
  EXPECT_TRUE(wl::workloadSources("gcc").empty());
}

TEST(SuiteTest, DeterministicRebuilds) {
  // Building the same workload twice yields byte-identical objects (the
  // whole pipeline is deterministic).
  Result<wl::BuiltWorkload> A = wl::buildWorkload("eqntott");
  Result<wl::BuiltWorkload> B = wl::buildWorkload("eqntott");
  ASSERT_TRUE(bool(A) && bool(B));
  ASSERT_EQ(A->UserEach.size(), B->UserEach.size());
  for (size_t I = 0; I < A->UserEach.size(); ++I)
    EXPECT_EQ(A->UserEach[I].serialize(), B->UserEach[I].serialize());
  EXPECT_EQ(A->UserAll.serialize(), B->UserAll.serialize());
}

} // namespace

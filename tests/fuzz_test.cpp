//===- tests/fuzz_test.cpp - Differential testing against the interpreter -===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates random (but always-terminating, always-in-bounds) MLang
/// programs and checks that the reference AST interpreter, the compiled
/// baseline, and every OM variant agree on the output stream and exit
/// code. This is the strongest soundness statement in the suite: OM may
/// rewrite anything it likes as long as no generated program can tell.
///
/// Generator invariants that make divergence impossible for *valid* runs:
/// array indices are masked to the array size, loop counters are dedicated
/// variables that bodies never touch, every local is assigned before use,
/// funcptr variables are initialized before any indirect call, and
/// pal_cycles (which the interpreter cannot model) is never emitted.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "lang/Interp.h"
#include "support/Format.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace om64;
using namespace om64::test;

namespace {

/// Generates one random module named "fz" (plus uses of the runtime).
class ProgramGenerator {
public:
  explicit ProgramGenerator(uint64_t Seed) : Rng(Seed) {}

  std::string generate() {
    Out = "module fz;\nimport io;\nimport rt;\nimport bits;\n\n";
    // Globals.
    Out += "var g0: int;\nvar g1: int;\nvar g2: int = 11;\n";
    Out += "var r0: real;\nvar r1: real = 2.5;\n";
    Out += "var arr: int[64];\nvar brr: real[32];\n";
    Out += "var fp0: funcptr;\n\n";

    // Helper functions f0..fN-1; fK may call f0..fK-1 (no recursion).
    NumFuncs = 2 + static_cast<unsigned>(Rng.nextBelow(2));
    for (unsigned F = 0; F < NumFuncs; ++F)
      emitFunction(F);
    emitMain();
    return Out;
  }

private:
  void emitFunction(unsigned Index) {
    CurFunc = Index;
    NumParams = 2; // fixed arity keeps call sites trivially consistent
    Out += "export func f" + std::to_string(Index) + "(";
    for (unsigned P = 0; P < NumParams; ++P) {
      if (P)
        Out += ", ";
      Out += "p" + std::to_string(P) + ": int";
    }
    Out += "): int {\n";
    emitLocalDecls();
    unsigned NumStmts = 2 + static_cast<unsigned>(Rng.nextBelow(5));
    for (unsigned S = 0; S < NumStmts; ++S)
      emitStmt(1, /*LoopDepth=*/0);
    Out += "  return " + intExpr(2) + ";\n}\n\n";
  }

  void emitMain() {
    CurFunc = NumFuncs;
    NumParams = 0;
    Out += "export func main(): int {\n";
    emitLocalDecls();
    Out += "  fp0 = &f0;\n";
    FpReady = true;
    unsigned NumStmts = 4 + static_cast<unsigned>(Rng.nextBelow(7));
    for (unsigned S = 0; S < NumStmts; ++S)
      emitStmt(1, /*LoopDepth=*/0);
    Out += "  io.print_int(g0 ^ g1);\n";
    Out += "  io.print_char(10);\n";
    Out += "  return " + intExpr(1) + " & 127;\n}\n";
    FpReady = false;
  }

  void emitLocalDecls() {
    // v0..v2 are general locals (always initialized below); lc0..lc2 are
    // loop counters no other statement may write; x0 is a real local.
    Out += "  var v0: int;\n  var v1: int;\n  var v2: int;\n";
    Out += "  var lc0: int;\n  var lc1: int;\n  var lc2: int;\n";
    Out += "  var x0: real;\n";
    Out += "  v0 = " + std::to_string(Rng.nextInRange(-9, 9)) + ";\n";
    Out += "  v1 = " + std::to_string(Rng.nextInRange(-99, 99)) + ";\n";
    Out += "  v2 = " + std::to_string(Rng.nextInRange(0, 63)) + ";\n";
    Out += "  x0 = " + realLit() + ";\n";
  }

  void indent(unsigned Depth) { Out.append(2 * Depth, ' '); }

  void emitStmt(unsigned Depth, unsigned LoopDepth) {
    switch (Rng.nextBelow(Depth >= 3 ? 6 : 8)) {
    case 0:
      indent(Depth);
      Out += intLValue() + " = " + intExpr(2) + ";\n";
      break;
    case 1:
      indent(Depth);
      Out += "arr[" + intExpr(1) + " & 63] = " + intExpr(2) + ";\n";
      break;
    case 2:
      indent(Depth);
      if (Rng.chance(1, 2))
        Out += "r0 = " + realExpr(2) + ";\n";
      else
        Out += "brr[" + intExpr(1) + " & 31] = " + realExpr(2) + ";\n";
      break;
    case 3:
      indent(Depth);
      if (Rng.chance(1, 3))
        Out += "io.print_int(" + intExpr(2) + ");\n";
      else if (Rng.chance(1, 2))
        Out += "io.print_char(" + std::to_string(Rng.nextInRange(33, 96)) +
               ");\n";
      else
        Out += "io.print_real(" + realExpr(1) + ");\n";
      break;
    case 4:
      indent(Depth);
      Out += callExpr() + ";\n";
      break;
    case 5:
      indent(Depth);
      Out += "x0 = x0 + " + realExpr(1) + ";\n";
      break;
    case 6: { // if / else
      indent(Depth);
      Out += "if (" + intExpr(2) + ") {\n";
      unsigned N = 1 + static_cast<unsigned>(Rng.nextBelow(3));
      for (unsigned S = 0; S < N; ++S)
        emitStmt(Depth + 1, LoopDepth);
      indent(Depth);
      if (Rng.chance(1, 2)) {
        Out += "} else {\n";
        unsigned M = 1 + static_cast<unsigned>(Rng.nextBelow(2));
        for (unsigned S = 0; S < M; ++S)
          emitStmt(Depth + 1, LoopDepth);
        indent(Depth);
      }
      Out += "}\n";
      break;
    }
    default: { // bounded while over a dedicated counter
      if (LoopDepth >= 3) {
        indent(Depth);
        Out += "g1 = g1 + 1;\n";
        break;
      }
      std::string Counter = "lc" + std::to_string(LoopDepth);
      indent(Depth);
      Out += Counter + " = " + std::to_string(Rng.nextInRange(1, 9)) +
             ";\n";
      indent(Depth);
      Out += "while (" + Counter + " > 0) {\n";
      indent(Depth + 1);
      Out += Counter + " = " + Counter + " - 1;\n";
      unsigned N = 1 + static_cast<unsigned>(Rng.nextBelow(3));
      for (unsigned S = 0; S < N; ++S)
        emitStmt(Depth + 1, LoopDepth + 1);
      indent(Depth);
      Out += "}\n";
      break;
    }
    }
  }

  /// Writable integer location. Loop counters are excluded; v2 is kept in
  /// 0..63 territory only by convention of its uses, so it is writable.
  std::string intLValue() {
    switch (Rng.nextBelow(5)) {
    case 0:  return "g0";
    case 1:  return "g1";
    case 2:  return "v0";
    case 3:  return "v1";
    default:
      return CurFunc < NumFuncs && NumParams > 0
                 ? "p" + std::to_string(Rng.nextBelow(NumParams))
                 : "v0";
    }
  }

  std::string realLit() {
    return formatString("%d.%02u", int(Rng.nextInRange(-20, 20)),
                        unsigned(Rng.nextBelow(100)));
  }

  std::string callExpr() {
    if (FpReady && Rng.chance(1, 4))
      return "fp0(" + intExpr(1) + ", " + intExpr(1) + ")";
    unsigned Callable = CurFunc; // f0..fCurFunc-1 are safe (no recursion)
    if (Callable == 0)
      return "rt.iabs(" + intExpr(1) + ")";
    unsigned Target = static_cast<unsigned>(Rng.nextBelow(Callable));
    return "f" + std::to_string(Target) + "(" + intExpr(1) + ", " +
           intExpr(1) + ")";
  }

  std::string intExpr(unsigned Depth) {
    if (Depth == 0 || Rng.chance(1, 3)) {
      switch (Rng.nextBelow(8)) {
      case 0:  return std::to_string(Rng.nextInRange(-128, 128));
      case 1:  return std::to_string(Rng.nextInRange(-100000, 100000));
      case 2:  return "g0";
      case 3:  return "g1";
      case 4:  return "g2";
      case 5:  return "v0";
      case 6:  return "v1";
      default:
        return CurFunc < NumFuncs && NumParams > 0
                   ? "p" + std::to_string(Rng.nextBelow(NumParams))
                   : "v1";
      }
    }
    switch (Rng.nextBelow(12)) {
    case 0:  return "(" + intExpr(Depth - 1) + " + " + intExpr(Depth - 1) + ")";
    case 1:  return "(" + intExpr(Depth - 1) + " - " + intExpr(Depth - 1) + ")";
    case 2:  return "(" + intExpr(Depth - 1) + " * " + intExpr(Depth - 1) + ")";
    case 3:  return "(" + intExpr(Depth - 1) + " / " + intExpr(Depth - 1) + ")";
    case 4:  return "(" + intExpr(Depth - 1) + " % " + intExpr(Depth - 1) + ")";
    case 5:  return "(" + intExpr(Depth - 1) + " & " + intExpr(Depth - 1) + ")";
    case 6:  return "(" + intExpr(Depth - 1) + " | " + intExpr(Depth - 1) + ")";
    case 7:
      return "(" + intExpr(Depth - 1) + " << " +
             std::to_string(Rng.nextBelow(8)) + ")";
    case 8:
      return "(" + intExpr(Depth - 1) + " " + cmpOp() + " " +
             intExpr(Depth - 1) + ")";
    case 9:  return "arr[" + intExpr(Depth - 1) + " & 63]";
    case 10: return "trunc(" + realExpr(Depth - 1) + ")";
    default: return "(-" + intExpr(Depth - 1) + ")";
    }
  }

  const char *cmpOp() {
    static const char *Ops[] = {"==", "!=", "<", "<=", ">", ">="};
    return Ops[Rng.nextBelow(6)];
  }

  std::string realExpr(unsigned Depth) {
    if (Depth == 0 || Rng.chance(1, 3)) {
      switch (Rng.nextBelow(4)) {
      case 0:  return realLit();
      case 1:  return "r0";
      case 2:  return "r1";
      default: return "brr[" + intExpr(0) + " & 31]";
      }
    }
    switch (Rng.nextBelow(5)) {
    case 0:  return "(" + realExpr(Depth - 1) + " + " + realExpr(Depth - 1) + ")";
    case 1:  return "(" + realExpr(Depth - 1) + " - " + realExpr(Depth - 1) + ")";
    case 2:  return "(" + realExpr(Depth - 1) + " * " + realExpr(Depth - 1) + ")";
    case 3:  return "(" + realExpr(Depth - 1) + " / " + realExpr(Depth - 1) + ")";
    default: return "toreal(" + intExpr(Depth - 1) + ")";
    }
  }

private:
  DetRandom Rng;
  std::string Out;
  unsigned NumFuncs = 0;
  unsigned CurFunc = 0;
  unsigned NumParams = 0;
  bool FpReady = false;
};

class DifferentialFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialFuzzTest, InterpreterAgreesWithEveryVariant) {
  uint64_t Seed = GetParam() * 0x9E3779B97F4A7C15ull + 1;
  std::string Source = ProgramGenerator(Seed).generate();

  lang::Program P = parseProgram({{"fz", Source}});
  DiagnosticEngine Diags;
  ASSERT_TRUE(lang::checkEntryPoint(P, Diags))
      << Diags.render() << "\nsource:\n" << Source;

  lang::InterpResult Oracle = lang::interpret(P);
  ASSERT_TRUE(Oracle.Ok) << Oracle.Error << "\nsource:\n" << Source;

  std::vector<obj::ObjectFile> Objs = compileAll(P);
  Result<obj::Image> Base = lnk::link(Objs);
  ASSERT_TRUE(bool(Base)) << Base.message();
  Result<sim::SimResult> BaseRun = sim::run(*Base);
  ASSERT_TRUE(bool(BaseRun)) << BaseRun.message() << "\nsource:\n"
                             << Source;
  EXPECT_EQ(BaseRun->Output, Oracle.Output) << "source:\n" << Source;
  EXPECT_EQ(BaseRun->ExitCode, Oracle.ExitCode) << "source:\n" << Source;

  for (om::OmLevel Level : {om::OmLevel::Simple, om::OmLevel::Full}) {
    for (bool Sched : {false, true}) {
      if (Sched && Level != om::OmLevel::Full)
        continue;
      om::OmOptions Opts;
      Opts.Level = Level;
      Opts.Reschedule = Sched;
      Opts.AlignLoopTargets = Sched;
      Result<om::OmResult> R = om::optimize(Objs, Opts);
      ASSERT_TRUE(bool(R)) << R.message();
      Result<sim::SimResult> Run = sim::run(R->Image);
      ASSERT_TRUE(bool(Run)) << Run.message() << "\nsource:\n" << Source;
      EXPECT_EQ(Run->Output, Oracle.Output)
          << "OM level " << om::levelName(Level) << (Sched ? "+sched" : "")
          << "\nsource:\n" << Source;
      EXPECT_EQ(Run->ExitCode, Oracle.ExitCode);
    }
  }

  // Multi-GAT variant: force several GP groups so cross-group calls,
  // kept GP resets, and per-group literal pools all face random programs.
  {
    om::OmOptions Opts;
    Opts.MaxGatEntriesPerGroup = 3;
    Result<om::OmResult> R = om::optimize(Objs, Opts);
    ASSERT_TRUE(bool(R)) << R.message();
    Result<sim::SimResult> Run = sim::run(R->Image);
    ASSERT_TRUE(bool(Run)) << Run.message() << "\nsource:\n" << Source;
    EXPECT_EQ(Run->Output, Oracle.Output)
        << "multi-GAT OM-full\nsource:\n" << Source;

    // And instrumented: behaviour must be unchanged, and main must be
    // entered exactly once.
    Opts = om::OmOptions();
    Opts.InstrumentProcedureCounts = true;
    Result<om::OmResult> Prof = om::optimize(Objs, Opts);
    ASSERT_TRUE(bool(Prof)) << Prof.message();
    Result<sim::SimResult> ProfRun = sim::run(Prof->Image);
    ASSERT_TRUE(bool(ProfRun)) << ProfRun.message();
    EXPECT_EQ(ProfRun->Output, Oracle.Output)
        << "instrumented OM-full\nsource:\n" << Source;
    for (size_t Idx = 0; Idx < Prof->ProfiledProcedures.size(); ++Idx)
      if (Prof->ProfiledProcedures[Idx] == "fz.main") {
        EXPECT_EQ(ProfRun->ProfileCounts[Idx], 1u);
      }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, DifferentialFuzzTest,
                         ::testing::Range<uint64_t>(1, 81));

TEST(EmulatedDivisionTest, MatchesCompiledRuntimeLibrary) {
  // Drive rt.divq / rt.remq on the simulator for awkward inputs and
  // compare against the emulated versions the interpreter uses.
  static const std::pair<int64_t, int64_t> Cases[] = {
      {100, 7},       {-100, 7},      {100, -7},    {-100, -7},
      {0, 3},         {3, 0},         {-3, 0},      {INT64_MAX, 2},
      {INT64_MAX, -2},{INT64_MIN, 2}, {INT64_MIN, -1}, {1, INT64_MAX},
      {INT64_MAX, INT64_MAX},         {7, 1},       {-7, 1}};
  // One program that prints divq/remq for every case. INT64_MIN cannot
  // be written as a literal (the lexer would clamp), so it is spelled as
  // a wrapping expression.
  auto lit = [](int64_t V) {
    if (V == INT64_MIN)
      return std::string("(-9223372036854775807 - 1)");
    return formatString("%lld", static_cast<long long>(V));
  };
  std::string Source = "module t;\nimport io;\nimport rt;\n";
  Source += "export func main(): int {\n  var a: int;\n  var b: int;\n";
  for (const auto &[A, B] : Cases) {
    Source += "  a = " + lit(A) + ";\n  b = " + lit(B) + ";\n";
    Source += "  io.print_int(rt.divq(a, b));\n  io.print_char(32);\n";
    Source += "  io.print_int(rt.remq(a, b));\n  io.print_char(10);\n";
  }
  Source += "  return 0;\n}\n";

  std::string Expected;
  for (const auto &[A, B] : Cases)
    Expected += formatString(
        "%lld %lld\n",
        static_cast<long long>(lang::emulatedDivq(A, B)),
        static_cast<long long>(lang::emulatedRemq(A, B)));
  EXPECT_EQ(runSourceAllVariants(Source), Expected);
}

TEST(EmulatedDivisionTest, AgreesWithCxxDivisionOnSafeInputs) {
  DetRandom Rng(31337);
  for (int Trial = 0; Trial < 5000; ++Trial) {
    int64_t A = Rng.nextInRange(-1000000000, 1000000000);
    int64_t B = Rng.nextInRange(-100000, 100000);
    if (B == 0)
      continue;
    EXPECT_EQ(lang::emulatedDivq(A, B), A / B) << A << "/" << B;
    EXPECT_EQ(lang::emulatedRemq(A, B), A % B) << A << "%" << B;
  }
}

} // namespace

//===- tests/exec_test.cpp - MLang end-to-end semantics tests -------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles small MLang programs through the full pipeline and checks the
/// simulator output against independently computed expectations. Each
/// program is also run through every OM variant; outputs must be
/// identical (the core soundness property of link-time optimization).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace om64;
using namespace om64::test;

namespace {

std::string wrapMain(const std::string &Body,
                     const std::string &Decls = std::string()) {
  return "module t;\nimport io;\nimport rt;\n" + Decls +
         "\nexport func main(): int {\n" + Body + "\n}\n";
}

TEST(ExecTest, IntegerArithmetic) {
  EXPECT_EQ(runSourceAllVariants(wrapMain(R"(
  io.print_int(2 + 3 * 4);
  io.print_char(32);
  io.print_int(10 - 17);
  io.print_char(32);
  io.print_int((1 << 20) + (256 >> 4));
  io.print_char(32);
  io.print_int(255 & 12 | 1 ^ 2);
  return 0;
)")), "14 -7 1048592 15");
}

struct DivCase {
  int64_t A;
  int64_t B;
};

class DivisionTest : public ::testing::TestWithParam<DivCase> {};

TEST_P(DivisionTest, MatchesCxxTruncation) {
  // MLang / and % lower to rt.divq/rt.remq; semantics are C-style
  // truncation toward zero.
  DivCase C = GetParam();
  char Body[256];
  std::snprintf(Body, sizeof(Body),
                "  io.print_int(%lld / %lld);\n  io.print_char(32);\n"
                "  io.print_int(%lld %% %lld);\n  return 0;",
                (long long)C.A, (long long)C.B, (long long)C.A,
                (long long)C.B);
  char Expected[128];
  std::snprintf(Expected, sizeof(Expected), "%lld %lld",
                (long long)(C.A / C.B), (long long)(C.A % C.B));
  EXPECT_EQ(runSourceAllVariants(wrapMain(Body)), Expected);
}

INSTANTIATE_TEST_SUITE_P(SignCombinations, DivisionTest,
                         ::testing::Values(DivCase{100, 7},
                                           DivCase{-100, 7},
                                           DivCase{100, -7},
                                           DivCase{-100, -7},
                                           DivCase{6, 3},
                                           DivCase{0, 5},
                                           DivCase{1, 1000000007},
                                           DivCase{987654321098765,
                                                   12345}));

TEST(ExecTest, ComparisonsAndLogic) {
  EXPECT_EQ(runSourceAllVariants(wrapMain(R"(
  io.print_int(3 < 4);
  io.print_int(3 <= 3);
  io.print_int(4 > 4);
  io.print_int(5 >= 4);
  io.print_int(5 == 5);
  io.print_int(5 != 5);
  io.print_int(2 and 3);
  io.print_int(2 and 0);
  io.print_int(0 or 7);
  io.print_int(not 9);
  io.print_int(not 0);
  return 0;
)")), "11011010101");
}

TEST(ExecTest, ControlFlow) {
  EXPECT_EQ(runSourceAllVariants(wrapMain(R"(
  var i: int;
  var total: int;
  i = 0;
  total = 0;
  while (i < 10) {
    if (i % 2 == 0) {
      total = total + i;
    } else if (i == 5) {
      total = total + 100;
    } else {
      total = total - 1;
    }
    i = i + 1;
  }
  io.print_int(total);
  return 0;
)")), "116"); // evens 0+2+4+6+8=20, i==5 adds 100, odds 1,3,7,9 subtract 4
}

TEST(ExecTest, GlobalsAndArrays) {
  EXPECT_EQ(runSourceAllVariants(wrapMain(R"(
  var i: int;
  i = 0;
  while (i < 16) {
    table[i] = i * i;
    i = i + 1;
  }
  cursor = 3;
  io.print_int(table[cursor * 2 + 1]);
  io.print_char(10);
  io.print_int(table[15] - table[14]);
  return 0;
)", "var table: int[16];\nvar cursor: int;")), "49\n29");
}

TEST(ExecTest, InitializedGlobals) {
  EXPECT_EQ(runSourceAllVariants(wrapMain(R"(
  io.print_int(base);
  io.print_char(32);
  io.print_int(trunc(factor * 4.0));
  return 0;
)", "var base: int = -17;\nvar factor: real = 2.5;")), "-17 10");
}

TEST(ExecTest, RealArithmeticAndConversions) {
  EXPECT_EQ(runSourceAllVariants(wrapMain(R"(
  var x: real;
  var y: real;
  x = 7.5;
  y = x * 2.0 - 1.0 / 4.0;   # 14.75
  io.print_int(trunc(y * 100.0));
  io.print_char(32);
  io.print_int(trunc(-y));
  io.print_char(32);
  io.print_int(toreal(21) * 2.0 == 42.0);
  io.print_char(32);
  io.print_int(1.5 < 1.25);
  io.print_int(1.25 <= 1.25);
  io.print_int(2.0 > 1.0);
  io.print_int(1.0 != 1.0);
  return 0;
)")), "1475 -14 1 0110");
}

TEST(ExecTest, FunctionsAndRecursion) {
  EXPECT_EQ(runSourceAllVariants(R"(
module t;
import io;

func fib(n: int): int {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}

export func twice(x: int): int { return x * 2; }

export func main(): int {
  io.print_int(fib(15));
  io.print_char(32);
  io.print_int(twice(fib(10)));
  return 0;
}
)"), "610 110");
}

TEST(ExecTest, RealParametersAndReturns) {
  EXPECT_EQ(runSourceAllVariants(R"(
module t;
import io;

func mix(a: real, b: real, w: real): real {
  return a * (1.0 - w) + b * w;
}

export func main(): int {
  io.print_int(trunc(mix(10.0, 20.0, 0.25) * 10.0));
  return 0;
}
)"), "125");
}

TEST(ExecTest, SixArgumentCalls) {
  EXPECT_EQ(runSourceAllVariants(R"(
module t;
import io;

func sum6(a: int, b: int, c: int, d: int, e: int, f: int): int {
  return a + b * 2 + c * 3 + d * 4 + e * 5 + f * 6;
}

export func main(): int {
  io.print_int(sum6(1, 2, 3, 4, 5, 6));
  return 0;
}
)"), "91");
}

TEST(ExecTest, FuncPtrDispatch) {
  EXPECT_EQ(runSourceAllVariants(R"(
module t;
import io;

var op: funcptr;

export func add(a: int, b: int): int { return a + b; }
export func sub(a: int, b: int): int { return a - b; }

func apply(f: funcptr, x: int, y: int): int {
  return f(x, y);
}

export func main(): int {
  op = &add;
  io.print_int(op(30, 12));
  io.print_char(32);
  op = &sub;
  io.print_int(op(30, 12));
  io.print_char(32);
  io.print_int(apply(&add, 1, 2));
  return 0;
}
)"), "42 18 3");
}

TEST(ExecTest, CrossModuleCallsAndGlobals) {
  // Exercises imports in both directions of the link order.
  lang::Program P = parseProgram({{"t", R"(
module t;
import helper;
import io;
export func main(): int {
  helper.bump(5);
  helper.bump(7);
  io.print_int(helper.level);
  io.print_char(32);
  io.print_int(helper.saturating(9000000));
  return 0;
}
)"},
                                  {"helper", R"(
module helper;
export var level: int;
export func bump(x: int) {
  level = level + x;
}
export func saturating(x: int): int {
  if (x > 1000) { return 1000; }
  return x;
}
)"}});
  DiagnosticEngine Diags;
  ASSERT_TRUE(lang::checkEntryPoint(P, Diags));
  std::vector<obj::ObjectFile> Objs = compileAll(P);
  Result<obj::Image> Img = lnk::link(Objs);
  ASSERT_TRUE(bool(Img)) << Img.message();
  Result<sim::SimResult> R = sim::run(*Img);
  ASSERT_TRUE(bool(R)) << R.message();
  EXPECT_EQ(R->Output, "12 1000");
}

TEST(ExecTest, DeepExpressionsSpill) {
  // Right-nested computed subexpressions keep 10 intermediates live at
  // once, forcing the expression value stack past the 8 temp registers.
  EXPECT_EQ(runSourceAllVariants(wrapMain(R"(
  var a: int;
  a = 1;
  io.print_int((a + 1) + (a + 2) *
               ((a + 3) + (a + 4) *
                ((a + 5) + (a + 6) *
                 ((a + 7) + (a + 8) *
                  ((a + 9) + (a + 10) * (a + 11))))));
  return 0;
)")), "135134");
}

TEST(ExecTest, TempsSurviveAcrossCalls) {
  // A temporary held across a call must be spilled and reloaded.
  EXPECT_EQ(runSourceAllVariants(R"(
module t;
import io;
var noise: int;
export func noisy(x: int): int {
  noise = noise + 1000000;
  return x + 1;
}
export func main(): int {
  io.print_int(7 * 100 + noisy(3) * 10 + noisy(1));
  return 0;
}
)"), "742");
}

TEST(ExecTest, BigLiteralsUseConstantPool) {
  char Expected[128];
  std::snprintf(Expected, sizeof(Expected), "%lld %lld",
                (long long)(123456789123456789ll % 1000003),
                (long long)(-9000000000ll / 3));
  EXPECT_EQ(runSourceAllVariants(wrapMain(R"(
  var big: int;
  big = 123456789123456789;
  io.print_int(big % 1000003);
  io.print_char(32);
  io.print_int(-9000000000 / 3);
  return 0;
)")), Expected);
}

TEST(ExecTest, PalCyclesIsMonotonic) {
  std::string Out = runSource(wrapMain(R"(
  var before: int;
  var after: int;
  var i: int;
  before = pal_cycles();
  i = 0;
  while (i < 100) { i = i + 1; }
  after = pal_cycles();
  io.print_int(after > before);
  return 0;
)"));
  EXPECT_EQ(Out, "1");
}

TEST(ExecTest, ExitCodePropagates) {
  lang::Program P = parseProgram(
      {{"t", "module t;\nexport func main(): int { return 42; }"}});
  std::vector<obj::ObjectFile> Objs = compileAll(P);
  Result<obj::Image> Img = lnk::link(Objs);
  ASSERT_TRUE(bool(Img)) << Img.message();
  Result<sim::SimResult> R = sim::run(*Img);
  ASSERT_TRUE(bool(R)) << R.message();
  EXPECT_EQ(R->ExitCode, 42);
}

TEST(ExecTest, PalHaltStopsImmediately) {
  std::string Out = runSource(wrapMain(R"(
  io.print_int(1);
  pal_halt(0);
  io.print_int(2);
  return 0;
)"));
  EXPECT_EQ(Out, "1");
}

} // namespace

//===- tests/TestUtil.h - Shared helpers for the gtest suite --------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef OM64_TESTS_TESTUTIL_H
#define OM64_TESTS_TESTUTIL_H

#include "codegen/Codegen.h"
#include "isa/Inst.h"
#include "lang/Parser.h"
#include "lang/Sema.h"
#include "linker/Linker.h"
#include "objfile/Image.h"
#include "om/Om.h"
#include "sim/Simulator.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace om64 {
namespace test {

/// Parses the given (name, source) modules plus the runtime library into a
/// checked Program. Fails the current test on error.
inline lang::Program parseProgram(
    const std::vector<std::pair<std::string, std::string>> &Modules,
    bool WithRuntime = true) {
  lang::Program P;
  DiagnosticEngine Diags;
  for (const auto &[Name, Src] : Modules) {
    std::optional<lang::Module> M = lang::parseModule(Name, Src, Diags);
    EXPECT_TRUE(M.has_value()) << Diags.render();
    if (M)
      P.Modules.push_back(std::move(*M));
  }
  if (WithRuntime)
    for (const wl::SourceModule &SM : wl::runtimeModules()) {
      std::optional<lang::Module> M =
          lang::parseModule(SM.Name, SM.Source, Diags);
      EXPECT_TRUE(M.has_value()) << Diags.render();
      if (M)
        P.Modules.push_back(std::move(*M));
    }
  EXPECT_TRUE(lang::analyzeProgram(P, Diags)) << Diags.render();
  return P;
}

/// All module names of \p P in order.
inline std::vector<std::string> allModuleNames(const lang::Program &P) {
  std::vector<std::string> Names;
  for (const lang::Module &M : P.Modules)
    Names.push_back(M.Name);
  return Names;
}

/// Compiles every module of \p P separately.
inline std::vector<obj::ObjectFile>
compileAll(const lang::Program &P,
           const cg::CompileOptions &Opts = cg::CompileOptions()) {
  Result<std::vector<obj::ObjectFile>> Objs =
      cg::compileEach(P, allModuleNames(P), Opts);
  EXPECT_TRUE(bool(Objs)) << (Objs ? "" : Objs.message());
  return Objs ? Objs.take() : std::vector<obj::ObjectFile>{};
}

/// Compiles user source (one module named "t") plus the runtime, links it
/// with the baseline linker, runs it, and returns the PAL output stream.
/// Fails the current test on any pipeline error.
inline std::string runSource(const std::string &Source,
                             uint64_t *CyclesOut = nullptr) {
  lang::Program P = parseProgram({{"t", Source}});
  DiagnosticEngine Diags;
  EXPECT_TRUE(lang::checkEntryPoint(P, Diags)) << Diags.render();
  std::vector<obj::ObjectFile> Objs = compileAll(P);
  Result<obj::Image> Img = lnk::link(Objs);
  EXPECT_TRUE(bool(Img)) << (Img ? "" : Img.message());
  if (!Img)
    return "<link error>";
  Result<sim::SimResult> Res = sim::run(*Img);
  EXPECT_TRUE(bool(Res)) << (Res ? "" : Res.message());
  if (!Res)
    return "<run error>";
  EXPECT_EQ(Res->ExitCode, 0);
  if (CyclesOut)
    *CyclesOut = Res->Cycles;
  return Res->Output;
}

/// Runs the same source through baseline, OM-simple, OM-full, and
/// OM-full+sched, expecting identical outputs; returns that output.
inline std::string runSourceAllVariants(const std::string &Source) {
  lang::Program P = parseProgram({{"t", Source}});
  DiagnosticEngine Diags;
  EXPECT_TRUE(lang::checkEntryPoint(P, Diags)) << Diags.render();
  std::vector<obj::ObjectFile> Objs = compileAll(P);
  Result<obj::Image> Base = lnk::link(Objs);
  EXPECT_TRUE(bool(Base)) << (Base ? "" : Base.message());
  if (!Base)
    return "<link error>";
  Result<sim::SimResult> BaseRes = sim::run(*Base);
  EXPECT_TRUE(bool(BaseRes)) << (BaseRes ? "" : BaseRes.message());
  if (!BaseRes)
    return "<run error>";

  for (om::OmLevel Level :
       {om::OmLevel::None, om::OmLevel::Simple, om::OmLevel::Full}) {
    for (bool Sched : {false, true}) {
      if (Sched && Level != om::OmLevel::Full)
        continue;
      om::OmOptions Opts;
      Opts.Level = Level;
      Opts.Reschedule = Sched;
      Opts.AlignLoopTargets = Sched;
      Result<om::OmResult> R = om::optimize(Objs, Opts);
      EXPECT_TRUE(bool(R)) << (R ? "" : R.message());
      if (!R)
        continue;
      Result<sim::SimResult> Res = sim::run(R->Image);
      EXPECT_TRUE(bool(Res)) << (Res ? "" : Res.message());
      if (!Res)
        continue;
      EXPECT_EQ(Res->Output, BaseRes->Output)
          << "divergence at OM level " << om::levelName(Level)
          << (Sched ? "+sched" : "");
      EXPECT_EQ(Res->ExitCode, BaseRes->ExitCode);
    }
  }
  return BaseRes->Output;
}

/// Builds a raw image from hand-assembled instructions (for simulator
/// semantics tests). The code is placed at the text base and entered
/// directly; it must end with a RET to RA or a PAL halt.
inline obj::Image makeRawImage(const std::vector<isa::Inst> &Code,
                               const std::vector<uint8_t> &Data = {}) {
  obj::Image Img;
  for (const isa::Inst &I : Code) {
    uint32_t W = isa::encode(I);
    for (unsigned B = 0; B < 4; ++B)
      Img.Text.push_back(static_cast<uint8_t>(W >> (8 * B)));
  }
  Img.Data = Data;
  Img.BssSize = 4096;
  Img.Entry = Img.TextBase;
  Img.InitialGp = Img.DataBase;
  return Img;
}

} // namespace test
} // namespace om64

#endif // OM64_TESTS_TESTUTIL_H

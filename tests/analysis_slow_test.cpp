//===- tests/analysis_slow_test.cpp - Analysis full-suite sweeps ----------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Full-suite (ctest -L slow) validation of the analysis-driven deletions
/// across every SPEC92-shaped workload:
///
///   * determinism: -j1 and -j4 links with --analysis are byte-identical
///     and agree on every analysis counter,
///   * coverage: the dataflow must strictly beat the pattern transforms
///     (at least one extra deletion) on a majority of the suite,
///   * correctness: differential execution at every OM level with the
///     analysis enabled, the deletion-proof verify stage green.
///
//===----------------------------------------------------------------------===//

#include "om/Verify.h"

#include "TestUtil.h"

using namespace om64;
using namespace om64::om;
using namespace om64::test;

namespace {

uint64_t analysisDeletions(const OmStats &S) {
  return S.AnalysisGpPairsDeleted + S.AnalysisPvLoadsDeleted +
         S.AnalysisDeadLoadsDeleted;
}

TEST(AnalysisSlowTest, DeletionsAreDeterministicAcrossJobCounts) {
  for (const std::string &Name : wl::workloadNames()) {
    Result<wl::BuiltWorkload> W = wl::buildWorkload(Name);
    ASSERT_TRUE(bool(W)) << Name << ": " << W.message();
    OmOptions Opts;
    Opts.Level = OmLevel::Full;
    Opts.Analysis = true;
    Opts.Reschedule = true;
    Opts.AlignLoopTargets = true;
    // Tiny inputs: keep -j4 genuinely parallel despite the fallback.
    Opts.SerialFallbackInsts = 0;

    Opts.Jobs = 1;
    Result<OmResult> Serial = wl::linkWithOm(*W, wl::CompileMode::Each, Opts);
    ASSERT_TRUE(bool(Serial)) << Name << " -j1: " << Serial.message();
    Opts.Jobs = 4;
    Result<OmResult> Par = wl::linkWithOm(*W, wl::CompileMode::Each, Opts);
    ASSERT_TRUE(bool(Par)) << Name << " -j4: " << Par.message();

    EXPECT_TRUE(Serial->Image.serialize() == Par->Image.serialize())
        << Name << ": --analysis -j4 image differs from the -j1 image";
    EXPECT_EQ(Serial->Stats.AnalysisGpPairsDeleted,
              Par->Stats.AnalysisGpPairsDeleted)
        << Name;
    EXPECT_EQ(Serial->Stats.AnalysisPvLoadsDeleted,
              Par->Stats.AnalysisPvLoadsDeleted)
        << Name;
    EXPECT_EQ(Serial->Stats.AnalysisDeadLoadsDeleted,
              Par->Stats.AnalysisDeadLoadsDeleted)
        << Name;
    EXPECT_EQ(Serial->Stats.SchedMemDepsFreed, Par->Stats.SchedMemDepsFreed)
        << Name;
  }
}

TEST(AnalysisSlowTest, AnalysisBeatsPatternOnMostWorkloads) {
  unsigned Wins = 0, Total = 0;
  std::printf("%-12s %10s %10s %10s %10s\n", "workload", "gp-pairs",
              "pv-loads", "dead-loads", "sched-deps");
  for (const std::string &Name : wl::workloadNames()) {
    Result<wl::BuiltWorkload> W = wl::buildWorkload(Name);
    ASSERT_TRUE(bool(W)) << Name << ": " << W.message();
    OmOptions Opts;
    Opts.Level = OmLevel::Full;
    Opts.Analysis = true;
    Opts.Verify = true; // deletion proofs re-derived on every link
    Result<OmResult> R = wl::linkWithOm(*W, wl::CompileMode::Each, Opts);
    ASSERT_TRUE(bool(R)) << Name << ": " << R.message();
    const OmStats &S = R->Stats;
    std::printf("%-12s %10llu %10llu %10llu %10llu\n", Name.c_str(),
                (unsigned long long)S.AnalysisGpPairsDeleted,
                (unsigned long long)S.AnalysisPvLoadsDeleted,
                (unsigned long long)S.AnalysisDeadLoadsDeleted,
                (unsigned long long)S.SchedMemDepsFreed);
    ++Total;
    Wins += analysisDeletions(S) > 0;
  }
  EXPECT_EQ(Total, 19u);
  EXPECT_GE(Wins, 10u)
      << "the dataflow must beat the pattern transforms on a majority "
         "of the suite";
}

TEST(AnalysisSlowTest, DifferentialExecutionWithAnalysis) {
  for (const std::string &Name : wl::workloadNames()) {
    Result<wl::BuiltWorkload> W = wl::buildWorkload(Name);
    ASSERT_TRUE(bool(W)) << Name << ": " << W.message();
    OmOptions Base;
    Base.Analysis = true;
    Base.Verify = true;
    Result<DifferentialReport> Rep =
        runDifferential(W->linkSet(wl::CompileMode::Each), Base);
    EXPECT_TRUE(bool(Rep)) << Name << ": " << Rep.message();
  }
}

} // namespace

//===- tests/analysis_test.cpp - OmAnalysis dataflow tests ----------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tier-1 coverage of om/Analysis.h: the abstract value lattice, golden
/// CFG/dominator/liveness results on hand-built procedures (diamond, loop,
/// irreducible), memory-base classification, the dataflow-vs-pattern
/// ReachableGroups subset audit, and the analysis-driven deletion phase of
/// a full optimize() run (counters, verify stage, execution equivalence).
///
//===----------------------------------------------------------------------===//

#include "om/Analysis.h"
#include "om/OmImpl.h"
#include "om/Verify.h"
#include "support/ThreadPool.h"

#include "TestUtil.h"

#include <set>

using namespace om64;
using namespace om64::om;
using namespace om64::om::analysis;
using namespace om64::isa;
using namespace om64::test;

namespace {

//===----------------------------------------------------------------------===//
// Abstract value lattice
//===----------------------------------------------------------------------===//

TEST(AbsValTest, MeetLattice) {
  AbsVal B = AbsVal::bottom();
  AbsVal E = AbsVal::entryOf(3);
  AbsVal A = AbsVal::addrOf(7);
  AbsVal G = AbsVal::gpOfGroup(1);
  AbsVal S = AbsVal::stack();
  AbsVal U = AbsVal::unknown();

  // Bottom is the identity.
  EXPECT_EQ(AbsVal::meet(B, E), E);
  EXPECT_EQ(AbsVal::meet(E, B), E);
  // Equal values meet to themselves.
  EXPECT_EQ(AbsVal::meet(E, AbsVal::entryOf(3)), E);
  EXPECT_EQ(AbsVal::meet(S, AbsVal::stack()), S);
  // Two different global-derived values lose identity but stay global.
  AbsVal M = AbsVal::meet(E, A);
  EXPECT_EQ(M.Kind, ValueKind::GlobalPtr);
  EXPECT_TRUE(AbsVal::meet(G, A).isGlobalDerived());
  // Global vs stack disagreement is Unknown.
  EXPECT_EQ(AbsVal::meet(E, S), U);
  // Unknown absorbs.
  EXPECT_EQ(AbsVal::meet(U, E), U);
}

TEST(AbsValTest, GpValProvenGroup) {
  EXPECT_TRUE(GpVal::ofGroup(2).provenGroup(2));
  EXPECT_FALSE(GpVal::ofGroup(2).provenGroup(1));
  GpVal G = GpVal::ofGroup(2);
  G |= GpVal::ofGroup(3);
  EXPECT_FALSE(G.provenGroup(2)); // may hold either group's GP
  EXPECT_FALSE(GpVal::other().provenGroup(0));
  // Groups past the 64-bit mask saturate conservatively.
  EXPECT_FALSE(GpVal::ofGroup(64).provenGroup(64));
}

//===----------------------------------------------------------------------===//
// Hand-built CFGs
//===----------------------------------------------------------------------===//

SymInst plain(Inst I) {
  SymInst S;
  S.I = I;
  return S;
}

SymInst branch(Opcode Op, uint8_t Ra, int32_t TargetIdx) {
  SymInst S;
  S.I = makeBranch(Op, Ra, 0);
  S.Kind = SKind::LocalBranch;
  S.TargetIdx = TargetIdx;
  return S;
}

SymInst ret() { return plain(makeJump(Opcode::Ret, Zero, RA)); }

/// Wraps hand-written instructions into a one-procedure program whose
/// entry is the procedure itself (so the loader seeds GP).
SymbolicProgram makeProgram(std::vector<SymInst> Insts) {
  SymbolicProgram SP;
  PSym S;
  S.Name = "t.main";
  S.IsProc = true;
  S.ProcIdx = 0;
  SP.Syms.push_back(std::move(S));
  SymProc P;
  P.Name = "t.main";
  P.SymId = 0;
  P.IsEntry = true;
  P.Insts = std::move(Insts);
  SP.Procs.push_back(std::move(P));
  SP.NumObjects = 1;
  SP.GroupOfObj = {0};
  return SP;
}

TEST(CfgTest, DiamondDominators) {
  SymProc P;
  P.Name = "diamond";
  P.Insts = {branch(Opcode::Beq, T0, 3),          // A: 0
             plain(makeMem(Opcode::Lda, V0, 1, Zero)), // B: 1
             branch(Opcode::Br, Zero, 4),         //    2
             plain(makeMem(Opcode::Lda, V0, 2, Zero)), // C: 3
             ret()};                              // D: 4
  Cfg C = buildCfg(P);
  ASSERT_EQ(C.Blocks.size(), 4u);
  // A=0 [0,1), B=1 [1,3), C=2 [3,4), D=3 [4,5).
  EXPECT_EQ(C.BlockOf[0], 0u);
  EXPECT_EQ(C.BlockOf[2], 1u);
  EXPECT_EQ(C.BlockOf[3], 2u);
  EXPECT_EQ(C.BlockOf[4], 3u);
  for (uint32_t B = 0; B < 4; ++B)
    EXPECT_TRUE(C.Reachable[B]) << "block " << B;
  // The entry dominates everything; neither arm dominates the join.
  for (uint32_t B = 0; B < 4; ++B)
    EXPECT_TRUE(C.dominates(0, B));
  EXPECT_FALSE(C.dominates(1, 3));
  EXPECT_FALSE(C.dominates(2, 3));
  EXPECT_EQ(C.Idom[3], 0u);
  EXPECT_FALSE(C.FallsOffEnd);
}

TEST(CfgTest, LoopBackEdge) {
  SymProc P;
  P.Name = "loop";
  P.Insts = {plain(makeMem(Opcode::Lda, T0, 3, Zero)),  // A: 0
             plain(makeOpLit(Opcode::Subq, T0, 1, T0)), // B: 1
             branch(Opcode::Bne, T0, 1),                //    2
             ret()};                                    // C: 3
  Cfg C = buildCfg(P);
  ASSERT_EQ(C.Blocks.size(), 3u);
  // B's successors: itself (back edge) and C.
  const CfgBlock &B = C.Blocks[1];
  ASSERT_EQ(B.NumSuccs, 2u);
  EXPECT_TRUE((B.Succs[0] == 1 && B.Succs[1] == 2) ||
              (B.Succs[0] == 2 && B.Succs[1] == 1));
  // A dom B dom C despite the cycle.
  EXPECT_TRUE(C.dominates(0, 2));
  EXPECT_TRUE(C.dominates(1, 2));
  EXPECT_EQ(C.Idom[1], 0u);
  EXPECT_EQ(C.Idom[2], 1u);
}

TEST(CfgTest, IrreducibleTwoEntryLoop) {
  SymProc P;
  P.Name = "irr";
  P.Insts = {branch(Opcode::Beq, T0, 3),               // A: 0
             plain(makeMem(Opcode::Lda, V0, 1, Zero)), // X: 1
             branch(Opcode::Br, Zero, 3),              //    2
             plain(makeMem(Opcode::Lda, V0, 2, Zero)), // Y: 3
             branch(Opcode::Beq, V0, 1),               //    4
             ret()};                                   // Z: 5
  Cfg C = buildCfg(P);
  ASSERT_EQ(C.Blocks.size(), 4u);
  // Both loop entries are dominated only by the fork, not by each other.
  EXPECT_EQ(C.Idom[1], 0u);
  EXPECT_EQ(C.Idom[2], 0u);
  EXPECT_FALSE(C.dominates(1, 2));
  EXPECT_FALSE(C.dominates(2, 1));
  // The exit is reached only through Y.
  EXPECT_EQ(C.Idom[3], 2u);
  EXPECT_TRUE(C.dominates(2, 3));
}

TEST(CfgTest, UnreachableAndFallOff) {
  SymProc P;
  P.Name = "dead";
  P.Insts = {branch(Opcode::Br, Zero, 2),
             plain(makeMem(Opcode::Lda, V0, 1, Zero)), // skipped
             plain(makeMem(Opcode::Lda, V0, 2, Zero))}; // no terminator
  Cfg C = buildCfg(P);
  ASSERT_EQ(C.Blocks.size(), 3u);
  EXPECT_TRUE(C.Reachable[0]);
  EXPECT_FALSE(C.Reachable[1]);
  EXPECT_TRUE(C.Reachable[2]);
  EXPECT_TRUE(C.FallsOffEnd);
  // Unreachable blocks dominate nothing and are dominated by nothing.
  EXPECT_FALSE(C.dominates(0, 1));
  EXPECT_FALSE(C.dominates(1, 1));
}

//===----------------------------------------------------------------------===//
// Liveness and values on a whole (tiny) program
//===----------------------------------------------------------------------===//

TEST(AnalysisTest, LivenessGolden) {
  SymbolicProgram Prog = makeProgram(
      {plain(makeOp(Opcode::Addq, T1, Zero, V0)), ret()});
  ThreadPool Pool(1);
  ProgramAnalysis PA = analyzeProgram(Prog, Pool);
  ASSERT_EQ(PA.Live.size(), 1u);
  uint64_t EntryLive = PA.Live[0].In[0];
  EXPECT_TRUE(EntryLive & (1ull << intUnit(T1))); // read before any write
  EXPECT_FALSE(EntryLive & (1ull << intUnit(T0))); // never read
  EXPECT_TRUE(EntryLive & (1ull << intUnit(RA))); // the RET needs it
  // After the ADDQ writes V0, T1 is dead.
  uint64_t AfterAdd = PA.liveAfter(Prog, 0, 0);
  EXPECT_FALSE(AfterAdd & (1ull << intUnit(T1)));
  EXPECT_TRUE(AfterAdd & (1ull << intUnit(V0))); // the return value
}

TEST(AnalysisTest, ValueTrackingAndMemBaseRegions) {
  SymbolicProgram Prog = makeProgram({
      plain(makeMem(Opcode::Lda, T0, 16, SP)),   // 0: t0 = sp+16 (stack)
      plain(makeMem(Opcode::Ldq, T1, 0, T0)),    // 1: stack load
      plain(makeMem(Opcode::Ldq, T2, 0, GP)),    // 2: global load
      plain(makeMem(Opcode::Ldq, V0, 0, A0)),    // 3: unknown base
      plain(makeMem(Opcode::Stq, T1, 8, T0)),    // 4: stack store
      ret(),                                     // 5
  });
  ThreadPool Pool(1);
  ProgramAnalysis PA = analyzeProgram(Prog, Pool);

  ValueState S = PA.valuesBefore(Prog, 0, 1);
  EXPECT_EQ(S.R[intUnit(T0)].Kind, ValueKind::Stack);
  EXPECT_FALSE(S.Unreachable);
  // Entry state: temps are Uninit, SP is the stack pointer.
  ValueState E = PA.valuesBefore(Prog, 0, 0);
  EXPECT_EQ(E.R[intUnit(T1)].Kind, ValueKind::Uninit);
  EXPECT_EQ(E.R[intUnit(SP)].Kind, ValueKind::Stack);

  std::vector<uint8_t> Regions = memBaseRegions(Prog, PA, 0);
  ASSERT_EQ(Regions.size(), 6u);
  EXPECT_EQ(Regions[0], 0u); // LDA is not a memory access
  EXPECT_EQ(Regions[1], 2u); // stack load
  EXPECT_EQ(Regions[2], 1u); // global load
  EXPECT_EQ(Regions[3], 0u); // argument base: unknown
  EXPECT_EQ(Regions[4], 2u); // stack store
  EXPECT_EQ(Regions[5], 0u);
}

//===----------------------------------------------------------------------===//
// Dataflow vs pattern reach sets, and the deletion phase end to end
//===----------------------------------------------------------------------===//

const char *CallHeavySource = R"(
module t;
import io;
var acc: int;
func leaf(x: int): int {
  return x * 3 + 1;
}
func mid(x: int): int {
  return leaf(x) + leaf(x + 1);
}
export func main(): int {
  var i: int;
  i = 0;
  while (i < 5) {
    acc = acc + mid(i);
    i = i + 1;
  }
  io.print_int_ln(acc);
  return 0;
}
)";

TEST(AnalysisTest, ReachableGroupsIsSubsetOfPattern) {
  lang::Program P = parseProgram({{"t", CallHeavySource}});
  std::vector<obj::ObjectFile> Objs = compileAll(P);
  OmOptions Opts;
  ThreadPool Pool(1);
  Result<SymbolicProgram> SP = liftProgram(Objs, Opts, Pool);
  ASSERT_TRUE(bool(SP)) << SP.message();
  ProgramAnalysis PA = analyzeProgram(*SP, Pool);
  GroupReachability Pattern = computeReachableGroups(*SP, Pool);
  ASSERT_EQ(PA.ReachableGroups.size(), Pattern.Bits.size() / Pattern.Words);
  for (size_t I = 0; I < PA.ReachableGroups.size(); ++I)
    EXPECT_EQ(PA.ReachableGroups[I] & ~Pattern.projected64(I), 0u)
        << "dataflow reach set exceeds the pattern's for "
        << SP->Procs[I].Name;
}

TEST(AnalysisTest, AnalysisDeletionsBeatPatternAndStayCorrect) {
  lang::Program P = parseProgram({{"t", CallHeavySource}});
  DiagnosticEngine Diags;
  ASSERT_TRUE(lang::checkEntryPoint(P, Diags)) << Diags.render();
  std::vector<obj::ObjectFile> Objs = compileAll(P);

  OmOptions PatternOpts;
  PatternOpts.Level = OmLevel::Full;
  Result<OmResult> Pattern = optimize(Objs, PatternOpts);
  ASSERT_TRUE(bool(Pattern)) << Pattern.message();

  OmOptions AnaOpts = PatternOpts;
  AnaOpts.Analysis = true;
  AnaOpts.Verify = true; // includes the deletion-proof stage
  Result<OmResult> Ana = optimize(Objs, AnaOpts);
  ASSERT_TRUE(bool(Ana)) << Ana.message();

  const OmStats &S = Ana->Stats;
  EXPECT_GT(S.AnalysisGpPairsDeleted + S.AnalysisPvLoadsDeleted +
                S.AnalysisDeadLoadsDeleted,
            0u)
      << "the dataflow proved nothing beyond the patterns";
  EXPECT_GE(Ana->Stats.InstructionsDeleted,
            Pattern->Stats.InstructionsDeleted);

  Result<sim::SimResult> RunPattern = sim::run(Pattern->Image);
  Result<sim::SimResult> RunAna = sim::run(Ana->Image);
  ASSERT_TRUE(bool(RunPattern)) << RunPattern.message();
  ASSERT_TRUE(bool(RunAna)) << RunAna.message();
  EXPECT_EQ(RunAna->Output, RunPattern->Output);
  EXPECT_EQ(RunAna->ExitCode, RunPattern->ExitCode);
}

TEST(AnalysisTest, SchedulerUsesBaseRegionsUnderAnalysis) {
  lang::Program P = parseProgram({{"t", CallHeavySource}});
  DiagnosticEngine Diags;
  ASSERT_TRUE(lang::checkEntryPoint(P, Diags)) << Diags.render();
  std::vector<obj::ObjectFile> Objs = compileAll(P);

  OmOptions Opts;
  Opts.Level = OmLevel::Full;
  Opts.Reschedule = true;
  Opts.AlignLoopTargets = true;
  Opts.Analysis = true;
  Opts.Verify = true;
  Result<OmResult> R = optimize(Objs, Opts);
  ASSERT_TRUE(bool(R)) << R.message();
  // The workload stores to globals and to the stack in the same regions,
  // so the classifier must free at least one store/store or load/store
  // pair.
  EXPECT_GT(R->Stats.SchedMemDepsFreed, 0u);

  Result<sim::SimResult> Run = sim::run(R->Image);
  ASSERT_TRUE(bool(Run)) << Run.message();
  EXPECT_EQ(Run->ExitCode, 0);
}

//===----------------------------------------------------------------------===//
// Lint corpus: exact diagnostics
//===----------------------------------------------------------------------===//

TEST(LintTest, CorpusReportsExactlyTheSeededDefect) {
  std::vector<LintCase> Corpus = lintCorpus();
  ASSERT_EQ(Corpus.size(), 11u);
  std::set<std::string> Codes;
  for (const LintCase &Case : Corpus) {
    ThreadPool Pool(1);
    OmOptions Opts;
    std::vector<obj::ObjectFile> Objs = {Case.Obj};
    Result<SymbolicProgram> SP = liftProgram(Objs, Opts, Pool);
    ASSERT_TRUE(bool(SP)) << Case.Name << ": " << SP.message();
    ProgramAnalysis PA = analyzeProgram(*SP, Pool);
    DiagnosticEngine Diags;
    unsigned N = runLint(*SP, PA, Diags);
    if (Case.Code.empty()) {
      EXPECT_EQ(N, 0u) << "clean case flagged:\n" << Diags.render();
      continue;
    }
    Codes.insert(Case.Code);
    EXPECT_GT(N, 0u) << Case.Name << " was not flagged";
    std::string Rendered = Diags.render();
    EXPECT_NE(Rendered.find(Case.Code + ":"), std::string::npos)
        << Case.Name << " findings lack " << Case.Code << ":\n"
        << Rendered;
    // Exactly one defect is seeded per corpus module.
    EXPECT_EQ(N, 1u) << Case.Name << " over-reported:\n" << Rendered;
  }
  EXPECT_EQ(Codes.size(), 10u) << "corpus must cover L001..L010";
}

} // namespace

//===- examples/inspect_object.cpp - objdump-style object inspector -------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles one module of a workload (or a built-in demo module) and dumps
/// everything the object format records: sections, the GAT literal pool,
/// symbols, relocations -- including the lituse links between address
/// loads and their uses that section 3 calls out as the loader hints OM
/// relies on -- procedure descriptors, and a disassembly listing.
///
/// Usage: inspect_object [workload-name [module-name]]
///
//===----------------------------------------------------------------------===//

#include "codegen/Codegen.h"
#include "isa/Disassembler.h"
#include "lang/Parser.h"
#include "lang/Sema.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace om64;

static const char *DemoSource = R"(
module demo;
import io;
var counter: int;
var table: int[512];
export func bump(x: int): int {
  counter = counter + x;
  table[counter & 511] = x;
  return counter;
}
export func main(): int {
  io.print_int(bump(3) + bump(4));
  return 0;
}
)";

static void fail(const std::string &Message) {
  std::fprintf(stderr, "inspect_object: %s\n", Message.c_str());
  std::exit(1);
}

int main(int argc, char **argv) {
  std::string Workload = argc > 1 ? argv[1] : "";
  std::string ModuleName = argc > 2 ? argv[2] : "";

  lang::Program Prog;
  DiagnosticEngine Diags;
  std::string UnitName;

  if (Workload.empty()) {
    std::optional<lang::Module> M =
        lang::parseModule("demo", DemoSource, Diags);
    if (!M)
      fail("demo parse error:\n" + Diags.render());
    UnitName = M->Name;
    Prog.Modules.push_back(std::move(*M));
    for (const wl::SourceModule &SM : wl::runtimeModules()) {
      std::optional<lang::Module> RM =
          lang::parseModule(SM.Name, SM.Source, Diags);
      if (!RM)
        fail("runtime parse error:\n" + Diags.render());
      Prog.Modules.push_back(std::move(*RM));
    }
    if (!lang::analyzeProgram(Prog, Diags))
      fail("semantic error:\n" + Diags.render());
  } else {
    Result<wl::ParsedWorkload> PW = wl::parseWorkload(Workload);
    if (!PW)
      fail(PW.message());
    UnitName = ModuleName.empty() ? PW->UserModules.front() : ModuleName;
    Prog = std::move(PW->AST);
  }

  cg::CompileOptions Opts;
  Result<obj::ObjectFile> ObjOrErr = cg::compileUnit(Prog, {UnitName}, Opts);
  if (!ObjOrErr)
    fail(ObjOrErr.message());
  obj::ObjectFile Obj = ObjOrErr.take();

  std::printf("object module: %s\n", Obj.ModuleName.c_str());
  std::printf("  .text %zu bytes, .data %zu bytes, .bss %llu bytes, "
              "GAT %zu entries\n\n",
              Obj.Text.size(), Obj.Data.size(),
              static_cast<unsigned long long>(Obj.BssSize),
              Obj.Gat.size());

  std::printf("symbols:\n");
  for (size_t Idx = 0; Idx < Obj.Symbols.size(); ++Idx) {
    const obj::Symbol &S = Obj.Symbols[Idx];
    std::printf("  [%2zu] %-24s %-6s off=%-6llu size=%-6llu%s%s%s\n", Idx,
                S.Name.c_str(),
                S.IsDefined ? obj::sectionName(S.Section) : "UNDEF",
                static_cast<unsigned long long>(S.Offset),
                static_cast<unsigned long long>(S.Size),
                S.IsProcedure ? " proc" : "",
                S.IsExported ? " export" : "",
                S.IsDefined ? "" : " extern");
  }

  std::printf("\nGAT literal pool:\n");
  for (size_t Idx = 0; Idx < Obj.Gat.size(); ++Idx)
    std::printf("  slot %2zu -> &%s\n", Idx,
                Obj.Symbols[Obj.Gat[Idx].SymbolIndex].Name.c_str());

  std::printf("\nrelocations (the loader hints of section 3):\n");
  for (const obj::Reloc &R : Obj.Relocs) {
    std::printf("  +%-5llu %-12s",
                static_cast<unsigned long long>(R.Offset),
                obj::relocKindName(R.Kind));
    switch (R.Kind) {
    case obj::RelocKind::Literal:
      std::printf(" gat[%u] (&%s), lit id %u", R.GatIndex,
                  Obj.Symbols[Obj.Gat[R.GatIndex].SymbolIndex].Name.c_str(),
                  R.LiteralId);
      break;
    case obj::RelocKind::LituseBase:
    case obj::RelocKind::LituseJsr:
    case obj::RelocKind::LituseAddr:
    case obj::RelocKind::LituseDeref:
      std::printf(" lit id %u", R.LiteralId);
      break;
    case obj::RelocKind::GpDisp:
      std::printf(" %s pair (+%llu), anchor +%llu",
                  R.GpKind == 0 ? "prologue" : "post-call",
                  static_cast<unsigned long long>(R.PairOffset),
                  static_cast<unsigned long long>(R.AnchorOffset));
      break;
    case obj::RelocKind::RefQuad:
      std::printf(" -> %s+%lld", Obj.Symbols[R.SymbolIndex].Name.c_str(),
                  static_cast<long long>(R.Addend));
      break;
    }
    std::printf("\n");
  }

  std::printf("\nprocedure descriptors:\n");
  for (const obj::ProcDesc &P : Obj.Procs)
    std::printf("  %-24s text +%-5llu size %-5llu %s\n",
                Obj.Symbols[P.SymbolIndex].Name.c_str(),
                static_cast<unsigned long long>(P.TextOffset),
                static_cast<unsigned long long>(P.TextSize),
                P.UsesGp ? "uses-gp" : "gp-free");

  std::printf("\ndisassembly:\n");
  std::vector<uint32_t> Words;
  for (size_t Off = 0; Off + 4 <= Obj.Text.size(); Off += 4)
    Words.push_back(static_cast<uint32_t>(Obj.Text[Off]) |
                    (static_cast<uint32_t>(Obj.Text[Off + 1]) << 8) |
                    (static_cast<uint32_t>(Obj.Text[Off + 2]) << 16) |
                    (static_cast<uint32_t>(Obj.Text[Off + 3]) << 24));
  std::string Listing = isa::disassembleRegion(
      Words, 0, [&](uint64_t Addr) -> std::string {
        for (const obj::ProcDesc &P : Obj.Procs)
          if (P.TextOffset == Addr)
            return Obj.Symbols[P.SymbolIndex].Name;
        return std::string();
      });
  std::fputs(Listing.c_str(), stdout);
  return 0;
}

//===- examples/om_pipeline.cpp - Watch OM transform one procedure --------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shows OM's effect at instruction granularity: compiles a two-procedure
/// program, then disassembles the same procedure out of the standard-link,
/// OM-simple, and OM-full executables side by side. The OM-simple listing
/// shows address loads turned into no-ops and GP-relative accesses; the
/// OM-full listing shows the instructions gone and the prologue restored
/// or deleted.
///
/// Usage: om_pipeline [procedure-suffix]   (default: "work")
///
//===----------------------------------------------------------------------===//

#include "codegen/Codegen.h"
#include "isa/Disassembler.h"
#include "lang/Parser.h"
#include "lang/Sema.h"
#include "linker/Linker.h"
#include "om/Om.h"
#include "om/Verify.h"
#include "support/Format.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>

using namespace om64;

static const char *Source = R"(
module demo;
import io;

var total: int;
var history: int[64];

export func work(x: int): int {
  total = total + x;
  history[total & 63] = x;
  return total;
}

export func main(): int {
  var i: int;
  i = 0;
  while (i < 8) {
    i = i + 1;
    work(i * i);
  }
  io.print_int_ln(work(0));
  return 0;
}
)";

static void fail(const std::string &Message) {
  std::fprintf(stderr, "om_pipeline: %s\n", Message.c_str());
  std::exit(1);
}

static void dumpProc(const obj::Image &Img, const std::string &Suffix) {
  for (const obj::ImageProc &P : Img.Procs) {
    if (P.Name.size() < Suffix.size() ||
        P.Name.compare(P.Name.size() - Suffix.size(), Suffix.size(),
                       Suffix) != 0)
      continue;
    std::printf("%s at %s, %llu bytes, GP group %u:\n", P.Name.c_str(),
                formatHex64(P.Entry).c_str(),
                static_cast<unsigned long long>(P.Size), P.GpGroup);
    std::vector<uint32_t> Words;
    for (uint64_t Off = 0; Off < P.Size; Off += 4)
      Words.push_back(Img.fetch(P.Entry + Off));
    std::string Text = isa::disassembleRegion(
        Words, P.Entry,
        [&](uint64_t Addr) { return Img.symbolAt(Addr); });
    std::fputs(Text.c_str(), stdout);
    return;
  }
  std::printf("  (no procedure matching '%s')\n", Suffix.c_str());
}

int main(int argc, char **argv) {
  std::string Suffix = argc > 1 ? argv[1] : "work";

  lang::Program Prog;
  DiagnosticEngine Diags;
  std::optional<lang::Module> M = lang::parseModule("demo", Source, Diags);
  if (!M)
    fail("parse error:\n" + Diags.render());
  Prog.Modules.push_back(std::move(*M));
  for (const wl::SourceModule &SM : wl::runtimeModules()) {
    std::optional<lang::Module> RM =
        lang::parseModule(SM.Name, SM.Source, Diags);
    if (!RM)
      fail("runtime parse error:\n" + Diags.render());
    Prog.Modules.push_back(std::move(*RM));
  }
  if (!lang::analyzeProgram(Prog, Diags) ||
      !lang::checkEntryPoint(Prog, Diags))
    fail("semantic error:\n" + Diags.render());

  std::vector<std::string> Names;
  for (const lang::Module &Mod : Prog.Modules)
    Names.push_back(Mod.Name);
  cg::CompileOptions CgOpts;
  Result<std::vector<obj::ObjectFile>> Objs =
      cg::compileEach(Prog, Names, CgOpts);
  if (!Objs)
    fail(Objs.message());

  Result<obj::Image> Baseline = lnk::link(*Objs);
  if (!Baseline)
    fail(Baseline.message());
  std::printf("=== standard link (conservative 64-bit conventions, "
              "Figures 1-2) ===\n");
  dumpProc(*Baseline, Suffix);

  for (om::OmLevel Level : {om::OmLevel::Simple, om::OmLevel::Full}) {
    om::OmOptions Opts;
    Opts.Level = Level;
    Result<om::OmResult> R = om::optimize(*Objs, Opts);
    if (!R)
      fail(R.message());
    std::printf("\n=== OM-%s ===\n", om::levelName(Level));
    dumpProc(R->Image, Suffix);
    const om::OmStats &S = R->Stats;
    std::printf("\n  whole-program: %llu/%llu address loads eliminated "
                "(%llu converted), %llu of %llu calls still need PV, "
                "GAT %llu -> %llu bytes, %llu instructions %s\n",
                static_cast<unsigned long long>(S.AddressLoadsConverted +
                                                S.AddressLoadsNullified),
                static_cast<unsigned long long>(S.AddressLoadsTotal),
                static_cast<unsigned long long>(S.AddressLoadsConverted),
                static_cast<unsigned long long>(S.CallsNeedingPvLoad),
                static_cast<unsigned long long>(S.CallsTotal),
                static_cast<unsigned long long>(S.GatBytesBefore),
                static_cast<unsigned long long>(S.GatBytesAfter),
                static_cast<unsigned long long>(
                    Level == om::OmLevel::Full ? S.InstructionsDeleted
                                               : S.InstructionsNullified),
                Level == om::OmLevel::Full ? "deleted" : "nullified");
  }

  // OmVerify: relink with every structural invariant checked between
  // stages, then execute the program at each OM level and prove the
  // architectural results identical (exit code, output, memory).
  std::printf("\n=== OmVerify ===\n");
  {
    om::OmOptions Opts;
    Opts.VerifyEachStage = true;
    Result<om::OmResult> R = om::optimize(*Objs, Opts);
    if (!R)
      fail("invariant check failed:\n" + R.message());
    std::printf("  structural invariants hold after every transform "
                "stage\n");
    Result<om::DifferentialReport> Rep = om::runDifferential(*Objs, Opts);
    if (!Rep)
      fail("differential execution failed:\n" + Rep.message());
    for (const om::DifferentialLeg &Leg : Rep->Legs)
      std::printf("  OM-%s%s: exit %lld, %zu output bytes, memory %s, "
                  "%llu instructions\n",
                  om::levelName(Leg.Level), Leg.Sched ? "+sched" : "",
                  static_cast<long long>(Leg.ExitCode), Leg.Output.size(),
                  formatHex64(Leg.MemoryHash).c_str(),
                  static_cast<unsigned long long>(Leg.Instructions));
    std::printf("  all %zu legs architecturally identical\n",
                Rep->Legs.size());
  }
  return 0;
}

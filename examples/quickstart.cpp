//===- examples/quickstart.cpp - Build, optimize, and run a program -------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end tour of the public API: compile a small two-module MLang
/// program with the conservative 64-bit conventions, link it with the
/// traditional linker and with OM at both levels, run every executable on
/// the timing simulator, and print the size/speed effects the paper is
/// about.
///
//===----------------------------------------------------------------------===//

#include "codegen/Codegen.h"
#include "lang/Parser.h"
#include "lang/Sema.h"
#include "linker/Linker.h"
#include "om/Om.h"
#include "sim/Simulator.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>

using namespace om64;

static const char *MainSource = R"(
module demo;
import io;
import mathlib;

var samples: real[64];
var total: real;
export var count: int;

export func fill() {
  var i: int;
  i = 0;
  while (i < 64) {
    samples[i] = toreal(i) * 0.125;
    i = i + 1;
  }
}

export func smooth(): real {
  var i: int;
  var acc: real;
  acc = 0.0;
  i = 0;
  while (i < 64) {
    acc = acc + mathlib.sqrt(samples[i]);
    count = count + 1;
    i = i + 1;
  }
  return acc;
}

export func main(): int {
  var r: real;
  fill();
  r = smooth();
  total = r;
  io.print_int_ln(trunc(r * 1000.0));
  io.print_int_ln(count);
  return 0;
}
)";

static void fail(const std::string &Message) {
  std::fprintf(stderr, "quickstart: %s\n", Message.c_str());
  std::exit(1);
}

int main() {
  // 1. Parse the user module plus the runtime library.
  lang::Program Prog;
  DiagnosticEngine Diags;
  std::optional<lang::Module> UserMod =
      lang::parseModule("demo", MainSource, Diags);
  if (!UserMod)
    fail("parse error:\n" + Diags.render());
  Prog.Modules.push_back(std::move(*UserMod));
  std::vector<std::string> LibNames;
  for (const wl::SourceModule &SM : wl::runtimeModules()) {
    std::optional<lang::Module> M =
        lang::parseModule(SM.Name, SM.Source, Diags);
    if (!M)
      fail("runtime parse error:\n" + Diags.render());
    LibNames.push_back(M->Name);
    Prog.Modules.push_back(std::move(*M));
  }
  if (!lang::analyzeProgram(Prog, Diags) ||
      !lang::checkEntryPoint(Prog, Diags))
    fail("semantic error:\n" + Diags.render());

  // 2. Compile: the user module and each library module separately
  //    (compile-each), with compile-time pipeline scheduling, exactly as
  //    the paper's baseline compilers work.
  cg::CompileOptions CgOpts;
  auto User = cg::compileUnit(Prog, {"demo"}, CgOpts);
  if (!User)
    fail("codegen: " + User.message());
  auto Lib = cg::compileEach(Prog, LibNames, CgOpts);
  if (!Lib)
    fail("codegen: " + Lib.message());
  std::vector<obj::ObjectFile> Objects;
  Objects.push_back(User.take());
  for (obj::ObjectFile &O : *Lib)
    Objects.push_back(std::move(O));

  // 3. Link three ways.
  auto Baseline = lnk::link(Objects);
  if (!Baseline)
    fail("link: " + Baseline.message());

  om::OmOptions Simple;
  Simple.Level = om::OmLevel::Simple;
  auto OmSimple = om::optimize(Objects, Simple);
  if (!OmSimple)
    fail("om-simple: " + OmSimple.message());

  om::OmOptions Full;
  Full.Level = om::OmLevel::Full;
  auto OmFull = om::optimize(Objects, Full);
  if (!OmFull)
    fail("om-full: " + OmFull.message());

  // 4. Run all three on the timing simulator and compare.
  struct Row {
    const char *Name;
    const obj::Image *Img;
  };
  Row Rows[3] = {{"standard-link", &*Baseline},
                 {"OM-simple", &OmSimple->Image},
                 {"OM-full", &OmFull->Image}};

  std::string FirstOutput;
  std::printf("%-14s %10s %12s %12s %8s\n", "variant", "text", "cycles",
              "insts", "nops");
  for (const Row &R : Rows) {
    auto Res = sim::run(*R.Img);
    if (!Res)
      fail(std::string(R.Name) + ": " + Res.message());
    if (FirstOutput.empty())
      FirstOutput = Res->Output;
    else if (Res->Output != FirstOutput)
      fail(std::string(R.Name) + ": output diverged from baseline!");
    std::printf("%-14s %10zu %12llu %12llu %8llu\n", R.Name,
                R.Img->Text.size(),
                static_cast<unsigned long long>(Res->Cycles),
                static_cast<unsigned long long>(Res->Instructions),
                static_cast<unsigned long long>(Res->Nops));
  }
  std::printf("\nprogram output (identical across variants):\n%s",
              FirstOutput.c_str());

  const om::OmStats &S = OmFull->Stats;
  std::printf("\nOM-full statistics:\n");
  std::printf("  address loads: %llu total, %llu converted, %llu removed\n",
              static_cast<unsigned long long>(S.AddressLoadsTotal),
              static_cast<unsigned long long>(S.AddressLoadsConverted),
              static_cast<unsigned long long>(S.AddressLoadsNullified));
  std::printf("  calls: %llu total, %llu still need PV, %llu still need "
              "GP resets\n",
              static_cast<unsigned long long>(S.CallsTotal),
              static_cast<unsigned long long>(S.CallsNeedingPvLoad),
              static_cast<unsigned long long>(S.CallsNeedingGpReset));
  std::printf("  GAT: %llu -> %llu bytes\n",
              static_cast<unsigned long long>(S.GatBytesBefore),
              static_cast<unsigned long long>(S.GatBytesAfter));
  std::printf("  instructions deleted: %llu of %llu\n",
              static_cast<unsigned long long>(S.InstructionsDeleted),
              static_cast<unsigned long long>(S.InstructionsTotal));
  return 0;
}

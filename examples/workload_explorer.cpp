//===- examples/workload_explorer.cpp - Drive one SPEC92-shaped program ---===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds one of the 19 workloads and runs every configuration the paper
/// measures -- {compile-each, compile-all} x {no OM, OM-simple, OM-full,
/// OM-full+sched} -- printing text size, GAT size, simulated cycles, and
/// the improvement over the baseline, then the program's (identical)
/// output.
///
/// Usage: workload_explorer [name]   (default: "spice"; "list" lists all)
///
//===----------------------------------------------------------------------===//

#include "linker/Linker.h"
#include "om/Om.h"
#include "sim/Simulator.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>

using namespace om64;

static void fail(const std::string &Message) {
  std::fprintf(stderr, "workload_explorer: %s\n", Message.c_str());
  std::exit(1);
}

int main(int argc, char **argv) {
  std::string Name = argc > 1 ? argv[1] : "spice";
  if (Name == "list") {
    for (const std::string &N : wl::workloadNames())
      std::printf("%s\n", N.c_str());
    return 0;
  }

  Result<wl::BuiltWorkload> W = wl::buildWorkload(Name);
  if (!W)
    fail(W.message());

  std::printf("workload '%s'\n\n", Name.c_str());
  std::printf("%-12s %-14s %9s %9s %12s %9s\n", "mode", "optimizer",
              "text", "GAT", "cycles", "speedup");

  std::string Output;
  for (wl::CompileMode Mode :
       {wl::CompileMode::Each, wl::CompileMode::All}) {
    const char *ModeName =
        Mode == wl::CompileMode::Each ? "compile-each" : "compile-all";

    Result<obj::Image> Base = wl::linkBaseline(*W, Mode);
    if (!Base)
      fail(Base.message());
    Result<sim::SimResult> BaseRun = sim::run(*Base);
    if (!BaseRun)
      fail(BaseRun.message());
    std::printf("%-12s %-14s %9zu %9llu %12llu %9s\n", ModeName,
                "standard-link", Base->Text.size(),
                static_cast<unsigned long long>(Base->GatSize),
                static_cast<unsigned long long>(BaseRun->Cycles), "-");
    if (Output.empty())
      Output = BaseRun->Output;
    else if (BaseRun->Output != Output)
      fail("outputs diverged between compile modes");

    struct {
      const char *Label;
      om::OmLevel Level;
      bool Sched;
    } Configs[] = {{"OM-none", om::OmLevel::None, false},
                   {"OM-simple", om::OmLevel::Simple, false},
                   {"OM-full", om::OmLevel::Full, false},
                   {"OM-full+sched", om::OmLevel::Full, true}};
    for (const auto &C : Configs) {
      om::OmOptions Opts;
      Opts.Level = C.Level;
      Opts.Reschedule = C.Sched;
      Opts.AlignLoopTargets = C.Sched;
      Result<om::OmResult> R = wl::linkWithOm(*W, Mode, Opts);
      if (!R)
        fail(R.message());
      Result<sim::SimResult> Run = sim::run(R->Image);
      if (!Run)
        fail(Run.message());
      if (Run->Output != Output)
        fail(std::string("output diverged under ") + C.Label);
      double Speedup =
          100.0 * (1.0 - static_cast<double>(Run->Cycles) /
                             static_cast<double>(BaseRun->Cycles));
      std::printf("%-12s %-14s %9zu %9llu %12llu %8.2f%%\n", ModeName,
                  C.Label, R->Image.Text.size(),
                  static_cast<unsigned long long>(R->Image.GatSize),
                  static_cast<unsigned long long>(Run->Cycles), Speedup);
    }
  }

  std::printf("\nprogram output (identical in all 10 configurations):\n%s",
              Output.c_str());
  return 0;
}

//===- bench/BenchUtil.h - Shared harness for the figure benches ----------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-figure benchmark binaries: building the 19
/// SPEC92-shaped workloads, running every OM variant, and printing
/// paper-style tables. Each binary regenerates the rows/series of one
/// table or figure from the paper's section 5.
///
//===----------------------------------------------------------------------===//

#ifndef OM64_BENCH_BENCHUTIL_H
#define OM64_BENCH_BENCHUTIL_H

#include "linker/Linker.h"
#include "om/Om.h"
#include "sim/Simulator.h"
#include "support/Format.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace om64 {
namespace bench {

/// Aborts the bench with a message (benches are tools; hard exit is fine).
inline void fail(const std::string &Message) {
  std::fprintf(stderr, "bench: %s\n", Message.c_str());
  std::exit(1);
}

/// A workload built in both compile modes.
struct BuiltEntry {
  std::string Name;
  wl::BuiltWorkload Built;
};

/// Builds every workload (compile-time scheduling on, as in the paper).
inline std::vector<BuiltEntry> buildAllWorkloads() {
  std::vector<BuiltEntry> Out;
  for (const std::string &Name : wl::workloadNames()) {
    Result<wl::BuiltWorkload> W = wl::buildWorkload(Name);
    if (!W)
      fail(Name + ": " + W.message());
    Out.push_back({Name, W.take()});
  }
  return Out;
}

/// Runs OM and returns its statistics (image discarded).
inline om::OmStats omStats(const wl::BuiltWorkload &W, wl::CompileMode Mode,
                           om::OmLevel Level, bool Sched = false) {
  om::OmOptions Opts;
  Opts.Level = Level;
  Opts.Reschedule = Sched;
  Opts.AlignLoopTargets = Sched;
  Result<om::OmResult> R = wl::linkWithOm(W, Mode, Opts);
  if (!R)
    fail(W.Name + ": " + R.message());
  return R->Stats;
}

/// Links with OM and runs on the timing simulator; returns cycle count.
inline uint64_t omCycles(const wl::BuiltWorkload &W, wl::CompileMode Mode,
                         om::OmLevel Level, bool Sched = false) {
  om::OmOptions Opts;
  Opts.Level = Level;
  Opts.Reschedule = Sched;
  Opts.AlignLoopTargets = Sched;
  Result<om::OmResult> R = wl::linkWithOm(W, Mode, Opts);
  if (!R)
    fail(W.Name + ": " + R.message());
  Result<sim::SimResult> S = sim::run(R->Image);
  if (!S)
    fail(W.Name + " (om " + om::levelName(Level) + "): " + S.message());
  return S->Cycles;
}

/// Baseline (standard linker) cycle count.
inline uint64_t baselineCycles(const wl::BuiltWorkload &W,
                               wl::CompileMode Mode) {
  Result<obj::Image> Img = wl::linkBaseline(W, Mode);
  if (!Img)
    fail(W.Name + ": " + Img.message());
  Result<sim::SimResult> S = sim::run(*Img);
  if (!S)
    fail(W.Name + " (baseline): " + S.message());
  return S->Cycles;
}

/// Percentage with one decimal.
inline std::string pct(double Numer, double Denom) {
  if (Denom == 0)
    return "   -";
  return formatString("%5.1f", 100.0 * Numer / Denom);
}

/// Percentage improvement of New over Old.
inline double improvementPct(uint64_t Old, uint64_t New) {
  if (Old == 0)
    return 0.0;
  return 100.0 * (1.0 - static_cast<double>(New) /
                            static_cast<double>(Old));
}

/// Prints a horizontal rule sized to \p Width.
inline void rule(unsigned Width) {
  for (unsigned I = 0; I < Width; ++I)
    std::putchar('-');
  std::putchar('\n');
}

} // namespace bench
} // namespace om64

#endif // OM64_BENCH_BENCHUTIL_H

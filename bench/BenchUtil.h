//===- bench/BenchUtil.h - Shared harness for the figure benches ----------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-figure benchmark binaries: building the 19
/// SPEC92-shaped workloads, running every OM variant, and printing
/// paper-style tables. Each binary regenerates the rows/series of one
/// table or figure from the paper's section 5.
///
//===----------------------------------------------------------------------===//

#ifndef OM64_BENCH_BENCHUTIL_H
#define OM64_BENCH_BENCHUTIL_H

#include "linker/Linker.h"
#include "om/Om.h"
#include "sim/Simulator.h"
#include "support/Format.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace om64 {
namespace bench {

/// Aborts the bench with a message (benches are tools; hard exit is fine).
inline void fail(const std::string &Message) {
  std::fprintf(stderr, "bench: %s\n", Message.c_str());
  std::exit(1);
}

/// A workload built in both compile modes.
struct BuiltEntry {
  std::string Name;
  wl::BuiltWorkload Built;
};

/// Builds every workload (compile-time scheduling on, as in the paper).
inline std::vector<BuiltEntry> buildAllWorkloads() {
  std::vector<BuiltEntry> Out;
  for (const std::string &Name : wl::workloadNames()) {
    Result<wl::BuiltWorkload> W = wl::buildWorkload(Name);
    if (!W)
      fail(Name + ": " + W.message());
    Out.push_back({Name, W.take()});
  }
  return Out;
}

/// Runs OM and returns its statistics (image discarded).
inline om::OmStats omStats(const wl::BuiltWorkload &W, wl::CompileMode Mode,
                           om::OmLevel Level, bool Sched = false) {
  om::OmOptions Opts;
  Opts.Level = Level;
  Opts.Reschedule = Sched;
  Opts.AlignLoopTargets = Sched;
  Result<om::OmResult> R = wl::linkWithOm(W, Mode, Opts);
  if (!R)
    fail(W.Name + ": " + R.message());
  return R->Stats;
}

/// Links with OM and runs on the timing simulator; returns cycle count.
inline uint64_t omCycles(const wl::BuiltWorkload &W, wl::CompileMode Mode,
                         om::OmLevel Level, bool Sched = false) {
  om::OmOptions Opts;
  Opts.Level = Level;
  Opts.Reschedule = Sched;
  Opts.AlignLoopTargets = Sched;
  Result<om::OmResult> R = wl::linkWithOm(W, Mode, Opts);
  if (!R)
    fail(W.Name + ": " + R.message());
  Result<sim::SimResult> S = sim::run(R->Image);
  if (!S)
    fail(W.Name + " (om " + om::levelName(Level) + "): " + S.message());
  return S->Cycles;
}

/// Baseline (standard linker) cycle count.
inline uint64_t baselineCycles(const wl::BuiltWorkload &W,
                               wl::CompileMode Mode) {
  Result<obj::Image> Img = wl::linkBaseline(W, Mode);
  if (!Img)
    fail(W.Name + ": " + Img.message());
  Result<sim::SimResult> S = sim::run(*Img);
  if (!S)
    fail(W.Name + " (baseline): " + S.message());
  return S->Cycles;
}

/// Percentage with one decimal.
inline std::string pct(double Numer, double Denom) {
  if (Denom == 0)
    return "   -";
  return formatString("%5.1f", 100.0 * Numer / Denom);
}

/// Percentage improvement of New over Old.
inline double improvementPct(uint64_t Old, uint64_t New) {
  if (Old == 0)
    return 0.0;
  return 100.0 * (1.0 - static_cast<double>(New) /
                            static_cast<double>(Old));
}

/// Prints a horizontal rule sized to \p Width.
inline void rule(unsigned Width) {
  for (unsigned I = 0; I < Width; ++I)
    std::putchar('-');
  std::putchar('\n');
}

/// Command-line options shared by every bench binary. Individual benches
/// may ignore fields that do not apply to them (e.g. --jobs on a bench
/// that never links in parallel), but the flags always parse so CI can
/// pass a uniform command line.
struct BenchArgs {
  unsigned Reps = 3;        ///< --reps N: best-of-N timing loops
  unsigned Jobs = 0;        ///< --jobs N: 0 means "bench picks a default"
  bool FunctionalOnly = false; ///< --functional-only: skip timing mode
  std::string JsonPath;     ///< --json FILE (or legacy --out FILE)
};

/// Parses the uniform bench command line; unknown flags abort with a
/// usage-style message. `--out` is accepted as an alias for `--json` so
/// older invocations keep working.
inline BenchArgs parseBenchArgs(int argc, char **argv) {
  BenchArgs A;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--reps" && I + 1 < argc) {
      Result<uint64_t> V = parseUnsigned(argv[++I], ~0u);
      if (!V)
        fail("--reps: " + V.message());
      A.Reps = static_cast<unsigned>(*V);
    } else if (Arg == "--jobs" && I + 1 < argc) {
      Result<uint64_t> V = parseUnsigned(argv[++I], ~0u);
      if (!V)
        fail("--jobs: " + V.message());
      A.Jobs = static_cast<unsigned>(*V);
    } else if (Arg == "--functional-only") {
      A.FunctionalOnly = true;
    } else if ((Arg == "--json" || Arg == "--out") && I + 1 < argc) {
      A.JsonPath = argv[++I];
    } else {
      fail("unknown argument: " + Arg +
           " (expected --reps N, --jobs N, --functional-only, --json FILE)");
    }
  }
  if (A.Reps == 0)
    A.Reps = 1;
  return A;
}

/// One row of the stable machine-readable bench schema consumed by
/// tools/check_bench.py. Every bench emits a flat list of these;
/// the checker matches rows across runs by (name, metric).
struct JsonEntry {
  std::string Name;   ///< workload name or "aggregate"
  std::string Metric; ///< e.g. "cycles", "functional_mips"
  double Value = 0;
  std::string Unit;   ///< e.g. "cycles", "mips", "seconds", "percent"
  /// Direction of goodness: true means a larger value is an improvement
  /// (throughput), false means smaller is better (cycles, misses, time).
  bool HigherIsBetter = false;
  /// Per-entry regression tolerance for check_bench.py, in percent.
  /// Negative means "use the checker's default" (15%). Host-time metrics
  /// set this wide because CI machines are noisy; deterministic metrics
  /// (cycle counts, instruction counts) keep the default.
  double TolerancePct = -1;
};

/// Serializes \p Entries in the uniform schema and writes them to
/// \p Path ("-" for stdout). Schema:
///   {"bench": NAME, "schema": 1, "entries": [
///      {"name":..., "metric":..., "value":..., "unit":...,
///       "higher_is_better":..., "tolerance_pct":...}, ...]}
inline void writeBenchJson(const std::string &Bench,
                           const std::vector<JsonEntry> &Entries,
                           const std::string &Path) {
  std::string Json = "{\n";
  Json += formatString("  \"bench\": \"%s\",\n", Bench.c_str());
  Json += "  \"schema\": 1,\n";
  Json += "  \"entries\": [\n";
  for (size_t I = 0; I < Entries.size(); ++I) {
    const JsonEntry &E = Entries[I];
    Json += formatString(
        "    {\"name\": \"%s\", \"metric\": \"%s\", \"value\": %.6f, "
        "\"unit\": \"%s\", \"higher_is_better\": %s, "
        "\"tolerance_pct\": %.1f}%s\n",
        E.Name.c_str(), E.Metric.c_str(), E.Value, E.Unit.c_str(),
        E.HigherIsBetter ? "true" : "false", E.TolerancePct,
        I + 1 < Entries.size() ? "," : "");
  }
  Json += "  ]\n}\n";
  if (Path == "-") {
    std::fputs(Json.c_str(), stdout);
    return;
  }
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    fail("cannot open " + Path);
  std::fputs(Json.c_str(), F);
  std::fclose(F);
  std::printf("wrote %s\n", Path.c_str());
}

} // namespace bench
} // namespace om64

#endif // OM64_BENCH_BENCHUTIL_H

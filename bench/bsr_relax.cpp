//===- bench/bsr_relax.cpp - BSR relaxation retention at mega scale -------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures what the worst-case-then-shrink BSR relaxation (src/om/Emit.cpp)
/// retains on the million-instruction megagen workload — the scale where
/// the old one-shot pessimistic pass reverted 100% of JSR→BSR conversions
/// and the profile-guided layout refused to run at all:
///
///   1. link the mega program at OM-full,
///   2. run the simulator with profiling on, collecting an AAXP profile,
///   3. relink with --layout=hot-cold driven by that profile (the hardest
///      configuration: reach is decided against the reordered procedure
///      order) with the post-assembly range audit on,
///   4. report conversions retained/reverted, the retention percentage,
///      and the fixpoint round count.
///
/// The bench aborts unless hot-cold layout actually reordered procedures,
/// over 90% of conversions survived, and the -j1 and -jN images are
/// byte-identical — so it doubles as the acceptance check for the
/// silent-forfeit regression.
///
/// Usage: bsr_relax [--reps R] [--jobs N] [--json FILE]
///
/// All reported counts are deterministic; only the wall-seconds entry
/// varies by host. The committed baseline is docs/BENCH_bsr_relax.json.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "megagen/MegaGen.h"
#include "support/ThreadPool.h"

#include <chrono>

using namespace om64;
using namespace om64::bench;

int main(int argc, char **argv) {
  BenchArgs Args = parseBenchArgs(argc, argv);
  unsigned Jobs = Args.Jobs ? Args.Jobs : ThreadPool::defaultConcurrency();
  if (Jobs < 2)
    Jobs = 2;

  megagen::MegaSpec Spec;
  Spec.Seed = 1;
  Spec.Shape = megagen::CallShape::Mixed;
  Spec.Modules = 64;
  Spec.ProcsPerModule = 16;
  Spec.TargetInstructions = 1050000;
  megagen::MegaProgram MP = megagen::generate(Spec);
  if (MP.Summary.TotalInstructions < 1000000)
    fail("mega workload came out under a million instructions");
  std::printf("bsr_relax: mega workload (%s): %llu instructions, %llu "
              "procedures, %u modules\n",
              megagen::shapeName(Spec.Shape),
              (unsigned long long)MP.Summary.TotalInstructions,
              (unsigned long long)MP.Summary.TotalProcedures, Spec.Modules);

  // Base link (no profile yet) and the profiling run.
  om::OmOptions Base;
  Base.Level = om::OmLevel::Full;
  Base.Jobs = 1;
  Result<om::OmResult> BaseLink = om::optimize(MP.Objects, Base);
  if (!BaseLink)
    fail("base link: " + BaseLink.message());
  sim::SimConfig ProfCfg;
  ProfCfg.Profile = true;
  Result<sim::SimResult> ProfRun = sim::run(BaseLink->Image, ProfCfg);
  if (!ProfRun)
    fail("profiling run: " + ProfRun.message());

  // Profile-guided relink with the range audit on; best-of-R for the
  // host-time entry, stats taken from the first rep (deterministic).
  om::OmOptions Lay = Base;
  Lay.HotColdLayout = true;
  Lay.Profile = ProfRun->Profile;
  Lay.Verify = true;
  double BestWall = 0;
  om::OmStats Stats;
  std::vector<uint8_t> RefImage;
  for (unsigned R = 0; R < Args.Reps; ++R) {
    auto Start = std::chrono::steady_clock::now();
    Result<om::OmResult> Link = om::optimize(MP.Objects, Lay);
    double Wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - Start)
                      .count();
    if (!Link)
      fail("layout link: " + Link.message());
    if (R == 0) {
      Stats = Link->Stats;
      RefImage = Link->Image.serialize();
      BestWall = Wall;
    } else {
      BestWall = std::min(BestWall, Wall);
    }
  }

  // The regression gates this bench exists for. The layout image's
  // procedure table must differ from the base link's somewhere — the old
  // code bailed on the whole-text gate and left the order untouched.
  bool Reordered = false;
  {
    Result<obj::Image> LayImg = obj::Image::deserialize(RefImage);
    if (!LayImg)
      fail("layout image does not round-trip: " + LayImg.message());
    for (size_t I = 0; I < LayImg->Procs.size(); ++I)
      if (LayImg->Procs[I].Name != BaseLink->Image.Procs[I].Name) {
        Reordered = true;
        break;
      }
  }
  if (!Reordered)
    fail("hot-cold layout did not reorder procedures at mega scale (the "
         "whole-text bail is back)");
  uint64_t Kept = Stats.JsrConvertedToBsr;
  uint64_t Reverted = Stats.BsrFallbackJsrs;
  double RetainedPct =
      Kept + Reverted
          ? 100.0 * static_cast<double>(Kept) /
                static_cast<double>(Kept + Reverted)
          : 0;
  if (RetainedPct <= 90.0)
    fail(formatString("only %.1f%% of conversions survived relaxation "
                      "(floor: >90%%)",
                      RetainedPct));

  om::OmOptions LayPar = Lay;
  LayPar.Jobs = Jobs;
  Result<om::OmResult> Par = om::optimize(MP.Objects, LayPar);
  if (!Par)
    fail("-jN layout link: " + Par.message());
  if (Par->Image.serialize() != RefImage)
    fail(formatString("-j%u layout image differs from -j1", Jobs));

  std::printf("  conversions: %llu kept, %llu reverted (%.2f%% retained)\n",
              (unsigned long long)Kept, (unsigned long long)Reverted,
              RetainedPct);
  std::printf("  fixpoint rounds: %llu   relink wall: %.3fs\n",
              (unsigned long long)Stats.BsrRelaxRounds, BestWall);
  std::printf("  images: byte-identical at -j1 and -j%u; range audit "
              "green\n",
              Jobs);

  if (!Args.JsonPath.empty()) {
    std::vector<JsonEntry> Entries;
    // Counts and percentages are deterministic (same spec, same
    // profile); tight tolerances keep the gate sharp. Wall time is host
    // noise; wide band.
    Entries.push_back({"mega", "retained_pct", RetainedPct, "percent",
                       /*HigherIsBetter=*/true, /*TolerancePct=*/5});
    Entries.push_back({"mega", "conversions_kept",
                       static_cast<double>(Kept), "count",
                       /*HigherIsBetter=*/true, /*TolerancePct=*/10});
    Entries.push_back({"mega", "relax_rounds",
                       static_cast<double>(Stats.BsrRelaxRounds), "count",
                       /*HigherIsBetter=*/false, /*TolerancePct=*/100});
    Entries.push_back({"mega", "relink_wall_seconds", BestWall, "seconds",
                       /*HigherIsBetter=*/false, /*TolerancePct=*/300});
    writeBenchJson("bsr_relax", Entries, Args.JsonPath);
  }
  return 0;
}

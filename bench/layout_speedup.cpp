//===- bench/layout_speedup.cpp - Profile-guided layout speedup -----------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures what the profile-guided hot/cold layout pass buys on top of
/// OM-full with rescheduling, across all 19 workloads. For each workload:
///
///   1. link at OM-full+sched (the best non-profile configuration),
///   2. run the timing simulator with profiling enabled, collecting an
///      AAXP execution profile,
///   3. relink the same objects with --layout=hot-cold driven by that
///      profile,
///   4. re-simulate and compare cycles and I-cache misses.
///
/// The simulated output and exit code must match between the two links
/// on every workload (the bench aborts otherwise), so this doubles as an
/// end-to-end correctness check of the layout pass.
///
///   layout_speedup [--reps N] [--json FILE]
///
/// Cycle counts are fully deterministic, so --reps only matters for the
/// (unreported) host wall time; CI runs --reps 1. --json writes the
/// uniform bench schema (see bench/BenchUtil.h); the committed baseline
/// is docs/BENCH_layout.json.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace om64;
using namespace om64::bench;

namespace {

struct Row {
  std::string Name;
  uint64_t BaseCycles = 0;
  uint64_t LayoutCycles = 0;
  uint64_t BaseMisses = 0;   // I-cache misses, OM-full+sched
  uint64_t LayoutMisses = 0; // I-cache misses, +layout
  uint64_t BlocksMoved = 0;
  uint64_t ColdBlocks = 0;
};

om::OmOptions fullSchedOpts() {
  om::OmOptions Opts;
  Opts.Level = om::OmLevel::Full;
  Opts.Reschedule = true;
  Opts.AlignLoopTargets = true;
  return Opts;
}

} // namespace

int main(int argc, char **argv) {
  BenchArgs Args = parseBenchArgs(argc, argv);

  std::vector<BuiltEntry> Suite = buildAllWorkloads();
  std::printf("layout_speedup: OM-full+sched vs +profile-guided layout, "
              "%zu workloads\n",
              Suite.size());

  std::vector<Row> Rows;
  uint64_t TotalBase = 0, TotalLayout = 0;
  uint64_t TotalBaseMisses = 0, TotalLayoutMisses = 0;
  unsigned Improved = 0, Regressed = 0;
  for (const BuiltEntry &E : Suite) {
    // Baseline link and profiling run.
    Result<om::OmResult> Base =
        wl::linkWithOm(E.Built, wl::CompileMode::Each, fullSchedOpts());
    if (!Base)
      fail(E.Name + ": " + Base.message());
    sim::SimConfig ProfCfg;
    ProfCfg.Profile = true;
    Result<sim::SimResult> BaseRun = sim::run(Base->Image, ProfCfg);
    if (!BaseRun)
      fail(E.Name + " (base): " + BaseRun.message());

    // Relink with the collected profile driving the layout.
    om::OmOptions LayOpts = fullSchedOpts();
    LayOpts.HotColdLayout = true;
    LayOpts.Profile = BaseRun->Profile;
    Result<om::OmResult> Lay =
        wl::linkWithOm(E.Built, wl::CompileMode::Each, LayOpts);
    if (!Lay)
      fail(E.Name + " (layout): " + Lay.message());
    Result<sim::SimResult> LayRun = sim::run(Lay->Image);
    if (!LayRun)
      fail(E.Name + " (layout): " + LayRun.message());

    if (LayRun->Output != BaseRun->Output ||
        LayRun->ExitCode != BaseRun->ExitCode)
      fail(E.Name + ": layout changed program behavior");

    Row R;
    R.Name = E.Name;
    R.BaseCycles = BaseRun->Cycles;
    R.LayoutCycles = LayRun->Cycles;
    R.BaseMisses = BaseRun->ICacheMisses;
    R.LayoutMisses = LayRun->ICacheMisses;
    R.BlocksMoved = Lay->Stats.LayoutBlocksMoved;
    R.ColdBlocks = Lay->Stats.LayoutColdBlocks;
    TotalBase += R.BaseCycles;
    TotalLayout += R.LayoutCycles;
    TotalBaseMisses += R.BaseMisses;
    TotalLayoutMisses += R.LayoutMisses;
    if (R.LayoutCycles < R.BaseCycles || R.LayoutMisses < R.BaseMisses)
      ++Improved;
    if (R.LayoutCycles > R.BaseCycles)
      ++Regressed;
    Rows.push_back(R);
  }

  std::printf("%-10s | %12s | %12s | %7s | %9s | %9s | %6s\n", "program",
              "base cyc", "layout cyc", "gain%", "base miss", "lay miss",
              "moved");
  rule(82);
  for (const Row &R : Rows)
    std::printf("%-10s | %12llu | %12llu | %7.2f | %9llu | %9llu | %6llu\n",
                R.Name.c_str(), (unsigned long long)R.BaseCycles,
                (unsigned long long)R.LayoutCycles,
                improvementPct(R.BaseCycles, R.LayoutCycles),
                (unsigned long long)R.BaseMisses,
                (unsigned long long)R.LayoutMisses,
                (unsigned long long)R.BlocksMoved);
  rule(82);
  std::printf("%-10s | %12llu | %12llu | %7.2f | %9llu | %9llu |\n",
              "aggregate", (unsigned long long)TotalBase,
              (unsigned long long)TotalLayout,
              improvementPct(TotalBase, TotalLayout),
              (unsigned long long)TotalBaseMisses,
              (unsigned long long)TotalLayoutMisses);
  std::printf("improved (cycles or I-cache): %u/%zu, cycle regressions: "
              "%u\n",
              Improved, Rows.size(), Regressed);

  if (!Args.JsonPath.empty()) {
    // All values here are deterministic simulator counts, so the default
    // gate tolerance applies; a real regression in the layout pass (or
    // in scheduling beneath it) moves these directly.
    std::vector<JsonEntry> Entries;
    Entries.push_back({"aggregate", "base_cycles",
                       static_cast<double>(TotalBase), "cycles",
                       /*HigherIsBetter=*/false, /*TolerancePct=*/-1});
    Entries.push_back({"aggregate", "layout_cycles",
                       static_cast<double>(TotalLayout), "cycles",
                       /*HigherIsBetter=*/false, /*TolerancePct=*/-1});
    Entries.push_back({"aggregate", "improvement_pct",
                       improvementPct(TotalBase, TotalLayout), "percent",
                       /*HigherIsBetter=*/true, /*TolerancePct=*/100});
    Entries.push_back({"aggregate", "workloads_improved",
                       static_cast<double>(Improved), "count",
                       /*HigherIsBetter=*/true, /*TolerancePct=*/25});
    for (const Row &R : Rows) {
      Entries.push_back({R.Name, "base_cycles",
                         static_cast<double>(R.BaseCycles), "cycles",
                         /*HigherIsBetter=*/false, /*TolerancePct=*/-1});
      Entries.push_back({R.Name, "layout_cycles",
                         static_cast<double>(R.LayoutCycles), "cycles",
                         /*HigherIsBetter=*/false, /*TolerancePct=*/-1});
      // Miss counts are small integers; percent tolerance on them needs
      // headroom so a one-line code change does not trip the gate.
      Entries.push_back({R.Name, "layout_icache_misses",
                         static_cast<double>(R.LayoutMisses), "misses",
                         /*HigherIsBetter=*/false, /*TolerancePct=*/50});
    }
    writeBenchJson("layout_speedup", Entries, Args.JsonPath);
  }
  return 0;
}

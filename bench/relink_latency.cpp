//===- bench/relink_latency.cpp - Cold vs warm relink latency -------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays seeded edit streams against a persistent IncrementalLinker (the
/// engine behind omlinkd) and compares each warm relink against a
/// from-scratch link of the same inputs:
///
///   * tiny: the 19 SPEC-shaped seed workloads, a short edit stream each.
///     Individually these link in milliseconds; the aggregate P50s show
///     the daemon never makes small links slower.
///   * mega: the generated 64-module million-instruction mixed program, in
///     the plain OM-full+sched configuration and with --analysis (the
///     dataflow fixpoint that dominates link time and that the summary
///     cache exists for). The analysis-config warm speedup is the
///     headline, gated number.
///
/// Every edit is megagen::perturbModule (one instruction of one procedure
/// changed — a single-proc recompile), so a warm relink re-lifts one
/// module and re-analyzes one procedure's worth of summaries. After every
/// warm relink the image is compared byte-for-byte against the
/// from-scratch link; the bench is also a cache-soundness test, and the
/// from-scratch runs double as the cold samples.
///
/// Usage: relink_latency [--reps R] [--jobs N] [--functional-only]
///                       [--json FILE]
///
///   --reps R   edit-stream length scale (default 3)
///   --jobs N   job count for every link (default: host concurrency)
///   --json F   write the uniform bench schema to F ("-" for stdout);
///              committed baseline: docs/BENCH_relink_latency.json
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "megagen/MegaGen.h"
#include "om/Incremental.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>

using namespace om64;
using namespace om64::bench;

namespace {

double percentile(std::vector<double> Samples, double P) {
  if (Samples.empty())
    return 0;
  std::sort(Samples.begin(), Samples.end());
  size_t Idx = static_cast<size_t>(P * (Samples.size() - 1) + 0.5);
  return Samples[std::min(Idx, Samples.size() - 1)];
}

/// From-scratch link of serialized modules: parse + optimize + serialize,
/// all timed. This is what a cold `omlink` run does, and its output is the
/// byte-identity oracle for every warm relink.
std::vector<uint8_t> coldLink(const std::string &Name,
                              const std::vector<std::vector<uint8_t>> &Mods,
                              const om::OmOptions &Opts, double &Seconds) {
  auto Start = std::chrono::steady_clock::now();
  std::vector<obj::ObjectFile> Objs;
  Objs.reserve(Mods.size());
  for (const std::vector<uint8_t> &B : Mods) {
    Result<obj::ObjectFile> O = obj::ObjectFile::deserialize(B);
    if (!O)
      fail(Name + ": " + O.message());
    Objs.push_back(O.take());
  }
  Result<om::OmResult> R = om::optimize(Objs, Opts);
  if (!R)
    fail(Name + ": " + R.message());
  std::vector<uint8_t> Img = R->Image.serialize();
  Seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          Start)
                .count();
  return Img;
}

/// Rewrites one module of \p Mods with one instruction perturbed,
/// starting at \p Idx and rotating past modules with no perturbable site
/// (e.g. all-relocated text and no data).
void editModule(const std::string &Name,
                std::vector<std::vector<uint8_t>> &Mods, size_t Idx,
                uint64_t Seed) {
  for (size_t Tried = 0; Tried < Mods.size(); ++Tried) {
    size_t I = (Idx + Tried) % Mods.size();
    Result<obj::ObjectFile> O = obj::ObjectFile::deserialize(Mods[I]);
    if (!O)
      fail(Name + ": " + O.message());
    if (!megagen::perturbModule(*O, Seed))
      continue;
    Mods[I] = O->serialize();
    return;
  }
  fail(Name + ": no module has a perturbable site");
}

/// Replays \p Steps single-module edits through one persistent linker.
/// Appends a cold sample and a warm sample per step (plus the initial
/// cold pair), failing on the first warm image that differs from the
/// from-scratch link of the same inputs.
void runEditStream(const std::string &Name,
                   std::vector<std::vector<uint8_t>> Mods,
                   const om::OmOptions &Opts, unsigned Steps, uint64_t Seed,
                   std::vector<double> &ColdSamples,
                   std::vector<double> &WarmSamples) {
  om::IncrementalLinker L(Opts);
  double Sec = 0;
  std::vector<uint8_t> Ref = coldLink(Name, Mods, Opts, Sec);
  ColdSamples.push_back(Sec);

  auto Start = std::chrono::steady_clock::now();
  Result<om::RelinkResult> R = L.relink(Mods);
  Sec = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      Start)
            .count();
  if (!R)
    fail(Name + ": " + R.message());
  if (R->Stats.Warm)
    fail(Name + ": first relink reported warm");
  if (R->ImageBytes != Ref)
    fail(Name + ": cold relink differs from from-scratch link");

  for (unsigned S = 0; S < Steps; ++S) {
    // Spread edits over the modules; each edit is one procedure's worth
    // of change, like a compiler re-emitting one file.
    editModule(Name, Mods, (S * 7 + 3) % Mods.size(), Seed + S);

    Start = std::chrono::steady_clock::now();
    R = L.relink(Mods);
    Sec = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        Start)
              .count();
    if (!R)
      fail(Name + ": " + R.message());
    WarmSamples.push_back(Sec);
    if (!R->Stats.Warm)
      fail(Name + ": edited relink was not warm");
    if (R->Stats.ModulesReparsed != 1)
      fail(Name + ": expected 1 reparsed module, got " +
           std::to_string(R->Stats.ModulesReparsed));

    Ref = coldLink(Name, Mods, Opts, Sec);
    ColdSamples.push_back(Sec);
    if (R->ImageBytes != Ref)
      fail(Name + ": warm image differs from from-scratch link at edit " +
           std::to_string(S));
  }
}

struct ConfigStats {
  double ColdP50 = 0, WarmP50 = 0, WarmP99 = 0, Speedup = 0;
};

ConfigStats summarize(const char *Label,
                      const std::vector<double> &ColdSamples,
                      const std::vector<double> &WarmSamples) {
  ConfigStats C;
  C.ColdP50 = percentile(ColdSamples, 0.5);
  C.WarmP50 = percentile(WarmSamples, 0.5);
  C.WarmP99 = percentile(WarmSamples, 0.99);
  C.Speedup = C.WarmP50 > 0 ? C.ColdP50 / C.WarmP50 : 0;
  std::printf("  %-14s cold P50 %8.3f ms   warm P50 %8.3f ms   warm P99 "
              "%8.3f ms   speedup %5.2fx\n",
              Label, C.ColdP50 * 1e3, C.WarmP50 * 1e3, C.WarmP99 * 1e3,
              C.Speedup);
  return C;
}

void pushConfig(std::vector<JsonEntry> &Entries, const std::string &Name,
                const ConfigStats &C) {
  // Host-time metrics on shared runners: wide bands, gate on blowups only.
  Entries.push_back({Name, "cold_p50_ms", C.ColdP50 * 1e3, "ms",
                     /*HigherIsBetter=*/false, /*TolerancePct=*/300});
  Entries.push_back({Name, "warm_p50_ms", C.WarmP50 * 1e3, "ms",
                     /*HigherIsBetter=*/false, /*TolerancePct=*/300});
  Entries.push_back({Name, "warm_p99_ms", C.WarmP99 * 1e3, "ms",
                     /*HigherIsBetter=*/false, /*TolerancePct=*/300});
  // The speedup is a ratio of two timings on the same host, so it is far
  // more stable than either timing alone.
  Entries.push_back({Name, "warm_speedup", C.Speedup, "ratio",
                     /*HigherIsBetter=*/true, /*TolerancePct=*/60});
}

} // namespace

int main(int argc, char **argv) {
  BenchArgs Args = parseBenchArgs(argc, argv);
  unsigned Jobs = Args.Jobs ? Args.Jobs : ThreadPool::defaultConcurrency();
  unsigned Steps = Args.FunctionalOnly ? 1 : std::max(Args.Reps, 3u);

  om::OmOptions Base;
  Base.Level = om::OmLevel::Full;
  Base.Reschedule = true;
  Base.AlignLoopTargets = true;
  Base.Jobs = Jobs;

  // --- Tiny scale: the 19 seed workloads. -----------------------------
  std::vector<BuiltEntry> Workloads = buildAllWorkloads();
  std::printf("relink_latency: %zu tiny workloads, %u-edit streams, "
              "-j%u\n",
              Workloads.size(), Steps, Jobs);
  std::vector<double> TinyCold, TinyWarm;
  for (const BuiltEntry &W : Workloads) {
    std::vector<std::vector<uint8_t>> Mods;
    for (const obj::ObjectFile &O : W.Built.linkSet(wl::CompileMode::Each))
      Mods.push_back(O.serialize());
    runEditStream(W.Name, std::move(Mods), Base, Steps, /*Seed=*/100,
                  TinyCold, TinyWarm);
  }
  ConfigStats Tiny = summarize("tiny", TinyCold, TinyWarm);

  // --- Mega scale: the 64-module mixed program. -----------------------
  megagen::MegaSpec Spec;
  megagen::MegaProgram MP = megagen::generate(Spec);
  std::vector<std::vector<uint8_t>> MegaMods;
  for (const obj::ObjectFile &O : MP.Objects)
    MegaMods.push_back(O.serialize());
  std::printf("relink_latency: mega workload (%s): %llu instructions, "
              "%llu procedures, %u modules\n",
              megagen::shapeName(Spec.Shape),
              (unsigned long long)MP.Summary.TotalInstructions,
              (unsigned long long)MP.Summary.TotalProcedures, Spec.Modules);

  std::vector<double> MegaCold, MegaWarm;
  runEditStream("mega", MegaMods, Base, Steps, /*Seed=*/200, MegaCold,
                MegaWarm);
  ConfigStats Mega = summarize("mega", MegaCold, MegaWarm);

  om::OmOptions Analysis = Base;
  Analysis.Analysis = true;
  std::vector<double> AnaCold, AnaWarm;
  runEditStream("mega-analysis", std::move(MegaMods), Analysis, Steps,
                /*Seed=*/300, AnaCold, AnaWarm);
  ConfigStats Ana = summarize("mega-analysis", AnaCold, AnaWarm);

  // The reason the daemon exists: on the analysis configuration a
  // single-procedure edit must relink at least twice as fast warm as
  // cold. (Measured ~4x; 2x is the acceptance floor.)
  if (!Args.FunctionalOnly && Ana.Speedup < 2.0)
    fail(formatString("mega --analysis warm relink is only %.2fx of cold "
                      "(floor: 2x)",
                      Ana.Speedup));
  std::printf("  every warm image byte-identical to its from-scratch "
              "link\n");

  if (!Args.JsonPath.empty()) {
    std::vector<JsonEntry> Entries;
    pushConfig(Entries, "tiny", Tiny);
    pushConfig(Entries, "mega", Mega);
    pushConfig(Entries, "mega-analysis", Ana);
    writeBenchJson("relink_latency", Entries, Args.JsonPath);
  }
  return 0;
}

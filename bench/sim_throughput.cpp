//===- bench/sim_throughput.cpp - Simulator throughput (simulated MIPS) ---===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures how fast the simulator itself runs: simulated instructions per
/// host wall-clock second (simulated MIPS), per workload and aggregate, in
/// both functional and timing mode. Every paper figure executes programs on
/// this simulator, so its throughput bounds how large a workload suite we
/// can afford; this bench records the trajectory across PRs.
///
///   sim_throughput [--reps N] [--functional-only] [--out FILE]
///
/// --out writes a machine-readable JSON record (see EXPERIMENTS.md for the
/// committed baseline, docs/BENCH_sim_throughput.json).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <chrono>
#include <cstring>

using namespace om64;
using namespace om64::bench;

namespace {

struct Row {
  std::string Name;
  uint64_t Instructions = 0;
  double FunctionalSec = 0; // best-of-reps wall time, functional mode
  double TimingSec = 0;     // best-of-reps wall time, timing mode
};

double mips(uint64_t Insts, double Sec) {
  return Sec > 0 ? static_cast<double>(Insts) / Sec / 1e6 : 0.0;
}

/// Runs \p Img once and returns wall seconds; aborts the bench on failure.
double timedRun(const std::string &Name, const obj::Image &Img,
                bool Timing, uint64_t &InstsOut) {
  sim::SimConfig Cfg;
  Cfg.Timing = Timing;
  auto Start = std::chrono::steady_clock::now();
  Result<sim::SimResult> R = sim::run(Img, Cfg);
  auto End = std::chrono::steady_clock::now();
  if (!R)
    fail(Name + ": " + R.message());
  InstsOut = R->Instructions;
  return std::chrono::duration<double>(End - Start).count();
}

} // namespace

int main(int argc, char **argv) {
  unsigned Reps = 3;
  bool FunctionalOnly = false;
  std::string OutPath;
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--reps") && I + 1 < argc)
      Reps = static_cast<unsigned>(std::strtoul(argv[++I], nullptr, 10));
    else if (!std::strcmp(argv[I], "--functional-only"))
      FunctionalOnly = true;
    else if (!std::strcmp(argv[I], "--out") && I + 1 < argc)
      OutPath = argv[++I];
    else
      fail(std::string("unknown argument: ") + argv[I]);
  }
  if (Reps == 0)
    Reps = 1;

  std::vector<BuiltEntry> Suite = buildAllWorkloads();

  std::vector<Row> Rows;
  uint64_t TotalInsts = 0;
  double TotalFunctional = 0, TotalTiming = 0;
  for (const BuiltEntry &E : Suite) {
    Result<obj::Image> Img = wl::linkBaseline(E.Built, wl::CompileMode::Each);
    if (!Img)
      fail(E.Name + ": " + Img.message());

    Row R;
    R.Name = E.Name;
    R.FunctionalSec = 1e30;
    R.TimingSec = 1e30;
    for (unsigned Rep = 0; Rep < Reps; ++Rep) {
      R.FunctionalSec =
          std::min(R.FunctionalSec,
                   timedRun(E.Name, *Img, /*Timing=*/false, R.Instructions));
      if (!FunctionalOnly) {
        uint64_t Ignored;
        R.TimingSec = std::min(
            R.TimingSec, timedRun(E.Name, *Img, /*Timing=*/true, Ignored));
      }
    }
    TotalInsts += R.Instructions;
    TotalFunctional += R.FunctionalSec;
    if (!FunctionalOnly)
      TotalTiming += R.TimingSec;
    Rows.push_back(R);
  }

  std::printf("Simulator throughput (simulated MIPS, best of %u reps)\n",
              Reps);
  std::printf("%-10s | %12s | %10s | %10s\n", "program", "insts",
              "func MIPS", "timing MIPS");
  rule(52);
  for (const Row &R : Rows)
    std::printf("%-10s | %12llu | %10.1f | %10s\n", R.Name.c_str(),
                (unsigned long long)R.Instructions,
                mips(R.Instructions, R.FunctionalSec),
                FunctionalOnly
                    ? "-"
                    : formatString("%.1f", mips(R.Instructions, R.TimingSec))
                          .c_str());
  rule(52);
  double AggFunc = mips(TotalInsts, TotalFunctional);
  double AggTiming = FunctionalOnly ? 0 : mips(TotalInsts, TotalTiming);
  std::printf("%-10s | %12llu | %10.1f | %10s\n", "aggregate",
              (unsigned long long)TotalInsts, AggFunc,
              FunctionalOnly ? "-"
                             : formatString("%.1f", AggTiming).c_str());

  if (!OutPath.empty()) {
    std::string Json = "{\n  \"bench\": \"sim_throughput\",\n";
    Json += formatString("  \"reps\": %u,\n", Reps);
    Json += formatString("  \"aggregate_instructions\": %llu,\n",
                         (unsigned long long)TotalInsts);
    Json += formatString("  \"aggregate_functional_mips\": %.2f,\n", AggFunc);
    Json += formatString("  \"aggregate_timing_mips\": %.2f,\n", AggTiming);
    Json += "  \"workloads\": [\n";
    for (size_t I = 0; I < Rows.size(); ++I) {
      const Row &R = Rows[I];
      Json += formatString(
          "    {\"name\": \"%s\", \"instructions\": %llu, "
          "\"functional_mips\": %.2f, \"timing_mips\": %.2f}%s\n",
          R.Name.c_str(), (unsigned long long)R.Instructions,
          mips(R.Instructions, R.FunctionalSec),
          FunctionalOnly ? 0.0 : mips(R.Instructions, R.TimingSec),
          I + 1 < Rows.size() ? "," : "");
    }
    Json += "  ]\n}\n";
    std::FILE *F = std::fopen(OutPath.c_str(), "w");
    if (!F)
      fail("cannot open " + OutPath);
    std::fputs(Json.c_str(), F);
    std::fclose(F);
    std::printf("wrote %s\n", OutPath.c_str());
  }
  return 0;
}

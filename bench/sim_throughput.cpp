//===- bench/sim_throughput.cpp - Simulator throughput (simulated MIPS) ---===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures how fast the simulator itself runs: simulated instructions per
/// host wall-clock second (simulated MIPS), per workload and aggregate.
/// Every paper figure executes programs on this simulator, so its
/// throughput bounds how large a workload suite we can afford; this bench
/// records the trajectory across PRs.
///
/// Functional throughput is measured per dispatch core — the computed-goto
/// threaded core (the default, metric `functional_mips`) and the legacy
/// switch core (`functional_mips_switch`) — plus their ratio
/// (`dispatch_speedup`) and timing-mode throughput. A final section runs
/// the whole 19-workload suite concurrently through sim::runSuite and
/// records the wall-clock and effective MIPS of the parallel sweep
/// (`suite_wall_s`, `suite_mips`), the shape the slow differential tests
/// and CI actually execute.
///
///   sim_throughput [--reps N] [--functional-only] [--json FILE]
///
/// --json writes a machine-readable record in the uniform bench schema
/// (see bench/BenchUtil.h and the committed baseline,
/// docs/BENCH_sim_throughput.json). tools/check_bench.py compares a
/// fresh record against that baseline in CI.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "sim/SuiteRunner.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <cstring>

using namespace om64;
using namespace om64::bench;

namespace {

struct Row {
  std::string Name;
  uint64_t Instructions = 0;
  double ThreadedSec = 1e30; // best-of-reps wall time, threaded core
  double SwitchSec = 1e30;   // best-of-reps wall time, switch core
  double TimingSec = 1e30;   // best-of-reps wall time, timing mode
};

double mips(uint64_t Insts, double Sec) {
  return Sec > 0 ? static_cast<double>(Insts) / Sec / 1e6 : 0.0;
}

/// Runs \p Img once and returns wall seconds; aborts the bench on failure.
double timedRun(const std::string &Name, const obj::Image &Img,
                const sim::SimConfig &Cfg, uint64_t &InstsOut) {
  auto Start = std::chrono::steady_clock::now();
  Result<sim::SimResult> R = sim::run(Img, Cfg);
  auto End = std::chrono::steady_clock::now();
  if (!R)
    fail(Name + ": " + R.message());
  InstsOut = R->Instructions;
  return std::chrono::duration<double>(End - Start).count();
}

sim::SimConfig functionalConfig(sim::DispatchMode Mode) {
  sim::SimConfig Cfg;
  Cfg.Timing = false;
  Cfg.Dispatch = Mode;
  return Cfg;
}

} // namespace

int main(int argc, char **argv) {
  BenchArgs Args = parseBenchArgs(argc, argv);
  unsigned Reps = Args.Reps;
  bool FunctionalOnly = Args.FunctionalOnly;

  std::vector<BuiltEntry> Suite = buildAllWorkloads();

  // Link everything up front; the images also feed the suite-runner
  // section below, which needs them all alive at once.
  std::vector<obj::Image> Images;
  for (const BuiltEntry &E : Suite) {
    Result<obj::Image> Img = wl::linkBaseline(E.Built, wl::CompileMode::Each);
    if (!Img)
      fail(E.Name + ": " + Img.message());
    Images.push_back(Img.take());
  }

  std::vector<Row> Rows;
  uint64_t TotalInsts = 0;
  double TotalThreaded = 0, TotalSwitch = 0, TotalTiming = 0;
  for (size_t I = 0; I < Suite.size(); ++I) {
    Row R;
    R.Name = Suite[I].Name;
    for (unsigned Rep = 0; Rep < Reps; ++Rep) {
      R.ThreadedSec = std::min(
          R.ThreadedSec,
          timedRun(R.Name, Images[I],
                   functionalConfig(sim::DispatchMode::Threaded),
                   R.Instructions));
      uint64_t SwitchInsts;
      R.SwitchSec = std::min(
          R.SwitchSec,
          timedRun(R.Name, Images[I],
                   functionalConfig(sim::DispatchMode::Switch),
                   SwitchInsts));
      if (SwitchInsts != R.Instructions)
        fail(R.Name + ": dispatch cores disagree on instruction count");
      if (!FunctionalOnly) {
        uint64_t Ignored;
        R.TimingSec = std::min(
            R.TimingSec,
            timedRun(R.Name, Images[I], sim::SimConfig{}, Ignored));
      }
    }
    TotalInsts += R.Instructions;
    TotalThreaded += R.ThreadedSec;
    TotalSwitch += R.SwitchSec;
    if (!FunctionalOnly)
      TotalTiming += R.TimingSec;
    Rows.push_back(R);
  }

  // Whole-suite shape: every workload concurrently via the suite runner
  // (threaded core), best of reps. On a single-core host this degrades
  // to roughly the serial sum; on wider hosts it tracks the wall-clock
  // the slow differential sweeps actually spend simulating.
  std::vector<sim::SuiteJob> Jobs;
  for (size_t I = 0; I < Suite.size(); ++I)
    Jobs.push_back({Suite[I].Name, &Images[I],
                    functionalConfig(sim::DispatchMode::Threaded)});
  double SuiteSec = 1e30;
  for (unsigned Rep = 0; Rep < Reps; ++Rep) {
    auto Start = std::chrono::steady_clock::now();
    std::vector<sim::SuiteJobResult> Results = sim::runSuite(Jobs);
    auto End = std::chrono::steady_clock::now();
    for (const sim::SuiteJobResult &SR : Results)
      if (!SR.Ok)
        fail("suite: " + SR.Name + ": " + SR.Error);
    SuiteSec = std::min(
        SuiteSec, std::chrono::duration<double>(End - Start).count());
  }

  std::printf(
      "Simulator throughput (simulated MIPS, best of %u reps)\n", Reps);
  std::printf("%-10s | %12s | %10s | %10s | %11s\n", "program", "insts",
              "thr MIPS", "sw MIPS", "timing MIPS");
  rule(66);
  for (const Row &R : Rows)
    std::printf("%-10s | %12llu | %10.1f | %10.1f | %11s\n", R.Name.c_str(),
                (unsigned long long)R.Instructions,
                mips(R.Instructions, R.ThreadedSec),
                mips(R.Instructions, R.SwitchSec),
                FunctionalOnly
                    ? "-"
                    : formatString("%.1f", mips(R.Instructions, R.TimingSec))
                          .c_str());
  rule(66);
  double AggThreaded = mips(TotalInsts, TotalThreaded);
  double AggSwitch = mips(TotalInsts, TotalSwitch);
  double AggTiming = FunctionalOnly ? 0 : mips(TotalInsts, TotalTiming);
  std::printf("%-10s | %12llu | %10.1f | %10.1f | %11s\n", "aggregate",
              (unsigned long long)TotalInsts, AggThreaded, AggSwitch,
              FunctionalOnly ? "-"
                             : formatString("%.1f", AggTiming).c_str());
  std::printf("dispatch speedup (threaded/switch): %.2fx\n",
              AggSwitch > 0 ? AggThreaded / AggSwitch : 0.0);
  std::printf("suite sweep (%zu workloads, %u threads): %.3fs wall, "
              "%.1f MIPS\n",
              Jobs.size(), ThreadPool::defaultConcurrency(), SuiteSec,
              mips(TotalInsts, SuiteSec));

  if (!Args.JsonPath.empty()) {
    // Host-time MIPS swings wildly on shared CI runners, so the gate
    // tolerance is very wide: the entries exist to catch order-of-
    // magnitude throughput collapses, not percent-level noise.
    // Instruction counts are deterministic and keep the default.
    std::vector<JsonEntry> Entries;
    Entries.push_back({"aggregate", "instructions",
                       static_cast<double>(TotalInsts), "insts",
                       /*HigherIsBetter=*/false, /*TolerancePct=*/-1});
    Entries.push_back({"aggregate", "functional_mips", AggThreaded, "mips",
                       /*HigherIsBetter=*/true, /*TolerancePct=*/80});
    Entries.push_back({"aggregate", "functional_mips_switch", AggSwitch,
                       "mips", /*HigherIsBetter=*/true,
                       /*TolerancePct=*/80});
    Entries.push_back({"aggregate", "dispatch_speedup",
                       AggSwitch > 0 ? AggThreaded / AggSwitch : 0.0, "x",
                       /*HigherIsBetter=*/true, /*TolerancePct=*/60});
    Entries.push_back({"aggregate", "suite_wall_s", SuiteSec, "s",
                       /*HigherIsBetter=*/false, /*TolerancePct=*/400});
    Entries.push_back({"aggregate", "suite_mips",
                       mips(TotalInsts, SuiteSec), "mips",
                       /*HigherIsBetter=*/true, /*TolerancePct=*/80});
    if (!FunctionalOnly)
      Entries.push_back({"aggregate", "timing_mips", AggTiming, "mips",
                         /*HigherIsBetter=*/true, /*TolerancePct=*/80});
    for (const Row &R : Rows) {
      Entries.push_back({R.Name, "instructions",
                         static_cast<double>(R.Instructions), "insts",
                         /*HigherIsBetter=*/false, /*TolerancePct=*/-1});
      Entries.push_back({R.Name, "functional_mips",
                         mips(R.Instructions, R.ThreadedSec), "mips",
                         /*HigherIsBetter=*/true, /*TolerancePct=*/80});
      Entries.push_back({R.Name, "functional_mips_switch",
                         mips(R.Instructions, R.SwitchSec), "mips",
                         /*HigherIsBetter=*/true, /*TolerancePct=*/80});
    }
    writeBenchJson("sim_throughput", Entries, Args.JsonPath);
  }
  return 0;
}

//===- bench/sim_throughput.cpp - Simulator throughput (simulated MIPS) ---===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures how fast the simulator itself runs: simulated instructions per
/// host wall-clock second (simulated MIPS), per workload and aggregate, in
/// both functional and timing mode. Every paper figure executes programs on
/// this simulator, so its throughput bounds how large a workload suite we
/// can afford; this bench records the trajectory across PRs.
///
///   sim_throughput [--reps N] [--functional-only] [--json FILE]
///
/// --json writes a machine-readable record in the uniform bench schema
/// (see bench/BenchUtil.h and the committed baseline,
/// docs/BENCH_sim_throughput.json). tools/check_bench.py compares a
/// fresh record against that baseline in CI.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <chrono>
#include <cstring>

using namespace om64;
using namespace om64::bench;

namespace {

struct Row {
  std::string Name;
  uint64_t Instructions = 0;
  double FunctionalSec = 0; // best-of-reps wall time, functional mode
  double TimingSec = 0;     // best-of-reps wall time, timing mode
};

double mips(uint64_t Insts, double Sec) {
  return Sec > 0 ? static_cast<double>(Insts) / Sec / 1e6 : 0.0;
}

/// Runs \p Img once and returns wall seconds; aborts the bench on failure.
double timedRun(const std::string &Name, const obj::Image &Img,
                bool Timing, uint64_t &InstsOut) {
  sim::SimConfig Cfg;
  Cfg.Timing = Timing;
  auto Start = std::chrono::steady_clock::now();
  Result<sim::SimResult> R = sim::run(Img, Cfg);
  auto End = std::chrono::steady_clock::now();
  if (!R)
    fail(Name + ": " + R.message());
  InstsOut = R->Instructions;
  return std::chrono::duration<double>(End - Start).count();
}

} // namespace

int main(int argc, char **argv) {
  BenchArgs Args = parseBenchArgs(argc, argv);
  unsigned Reps = Args.Reps;
  bool FunctionalOnly = Args.FunctionalOnly;

  std::vector<BuiltEntry> Suite = buildAllWorkloads();

  std::vector<Row> Rows;
  uint64_t TotalInsts = 0;
  double TotalFunctional = 0, TotalTiming = 0;
  for (const BuiltEntry &E : Suite) {
    Result<obj::Image> Img = wl::linkBaseline(E.Built, wl::CompileMode::Each);
    if (!Img)
      fail(E.Name + ": " + Img.message());

    Row R;
    R.Name = E.Name;
    R.FunctionalSec = 1e30;
    R.TimingSec = 1e30;
    for (unsigned Rep = 0; Rep < Reps; ++Rep) {
      R.FunctionalSec =
          std::min(R.FunctionalSec,
                   timedRun(E.Name, *Img, /*Timing=*/false, R.Instructions));
      if (!FunctionalOnly) {
        uint64_t Ignored;
        R.TimingSec = std::min(
            R.TimingSec, timedRun(E.Name, *Img, /*Timing=*/true, Ignored));
      }
    }
    TotalInsts += R.Instructions;
    TotalFunctional += R.FunctionalSec;
    if (!FunctionalOnly)
      TotalTiming += R.TimingSec;
    Rows.push_back(R);
  }

  std::printf("Simulator throughput (simulated MIPS, best of %u reps)\n",
              Reps);
  std::printf("%-10s | %12s | %10s | %10s\n", "program", "insts",
              "func MIPS", "timing MIPS");
  rule(52);
  for (const Row &R : Rows)
    std::printf("%-10s | %12llu | %10.1f | %10s\n", R.Name.c_str(),
                (unsigned long long)R.Instructions,
                mips(R.Instructions, R.FunctionalSec),
                FunctionalOnly
                    ? "-"
                    : formatString("%.1f", mips(R.Instructions, R.TimingSec))
                          .c_str());
  rule(52);
  double AggFunc = mips(TotalInsts, TotalFunctional);
  double AggTiming = FunctionalOnly ? 0 : mips(TotalInsts, TotalTiming);
  std::printf("%-10s | %12llu | %10.1f | %10s\n", "aggregate",
              (unsigned long long)TotalInsts, AggFunc,
              FunctionalOnly ? "-"
                             : formatString("%.1f", AggTiming).c_str());

  if (!Args.JsonPath.empty()) {
    // Host-time MIPS swings wildly on shared CI runners, so the gate
    // tolerance is very wide: the entries exist to catch order-of-
    // magnitude throughput collapses, not percent-level noise.
    // Instruction counts are deterministic and keep the default.
    std::vector<JsonEntry> Entries;
    Entries.push_back({"aggregate", "instructions",
                       static_cast<double>(TotalInsts), "insts",
                       /*HigherIsBetter=*/false, /*TolerancePct=*/-1});
    Entries.push_back({"aggregate", "functional_mips", AggFunc, "mips",
                       /*HigherIsBetter=*/true, /*TolerancePct=*/80});
    if (!FunctionalOnly)
      Entries.push_back({"aggregate", "timing_mips", AggTiming, "mips",
                         /*HigherIsBetter=*/true, /*TolerancePct=*/80});
    for (const Row &R : Rows) {
      Entries.push_back({R.Name, "instructions",
                         static_cast<double>(R.Instructions), "insts",
                         /*HigherIsBetter=*/false, /*TolerancePct=*/-1});
      Entries.push_back({R.Name, "functional_mips",
                         mips(R.Instructions, R.FunctionalSec), "mips",
                         /*HigherIsBetter=*/true, /*TolerancePct=*/80});
    }
    writeBenchJson("sim_throughput", Entries, Args.JsonPath);
  }
  return 0;
}

//===- bench/fig4_call_bookkeeping.cpp - Reproduces Figure 4 --------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 4: "Static fraction of calls requiring PV-loads (top) and
/// GP-reset code (bottom)" for no-OM / OM-simple / OM-full, in both
/// compile modes.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace om64;
using namespace om64::bench;

int main() {
  std::vector<BuiltEntry> Suite = buildAllWorkloads();

  const char *SectionName[2] = {"calls requiring PV-loads",
                                "calls requiring GP-reset code"};
  for (int Section = 0; Section < 2; ++Section) {
    std::printf("Figure 4%s: static fraction of %s (%%)\n",
                Section == 0 ? " (top)" : " (bottom)",
                SectionName[Section]);
    std::printf("%-10s | %-17s | %-17s\n", "", "compile-each",
                "compile-all");
    std::printf("%-10s | %5s %5s %5s | %5s %5s %5s\n", "program", "noOM",
                "simp", "full", "noOM", "simp", "full");
    rule(52);
    double Mean[6] = {};
    for (const BuiltEntry &E : Suite) {
      std::printf("%-10s |", E.Name.c_str());
      unsigned Col = 0;
      for (wl::CompileMode Mode :
           {wl::CompileMode::Each, wl::CompileMode::All}) {
        for (om::OmLevel Level : {om::OmLevel::None, om::OmLevel::Simple,
                                  om::OmLevel::Full}) {
          om::OmStats S = omStats(E.Built, Mode, Level);
          uint64_t Numer = Section == 0 ? S.CallsNeedingPvLoad
                                        : S.CallsNeedingGpReset;
          std::printf(" %s", pct(static_cast<double>(Numer),
                                 static_cast<double>(S.CallsTotal))
                                 .c_str());
          Mean[Col] += 100.0 * static_cast<double>(Numer) /
                       static_cast<double>(S.CallsTotal);
          ++Col;
        }
        std::printf(" |");
      }
      std::printf("\n");
    }
    rule(52);
    std::printf("%-10s |", "mean");
    for (unsigned Col = 0; Col < 6; ++Col) {
      std::printf(" %5.1f", Mean[Col] / Suite.size());
      if (Col == 2)
        std::printf(" |");
    }
    std::printf(" |\n\n");
  }
  std::printf("Paper's shape: without OM most calls keep all bookkeeping "
              "even under\ninterprocedural compilation (library calls); "
              "OM-simple nullifies most GP\nresets but keeps PV loads for "
              "scheduled GP-using callees; OM-full removes\nall but the "
              "calls through procedure variables.\n");
  return 0;
}

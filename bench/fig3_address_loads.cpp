//===- bench/fig3_address_loads.cpp - Reproduces Figure 3 -----------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 3: "Static fraction of address loads removed, whether converted
/// (dark) or nullified (light)". For each program and each of the four
/// configurations (compile-each/compile-all x OM-simple/OM-full) this
/// prints the percentage of address loads converted to LDA/LDAH and the
/// percentage nullified/deleted, plus the unweighted arithmetic mean the
/// paper's key reports.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace om64;
using namespace om64::bench;

int main() {
  std::vector<BuiltEntry> Suite = buildAllWorkloads();

  std::printf("Figure 3: static fraction of address loads eliminated "
              "(%% of address loads)\n");
  std::printf("conv = converted to LDA/LDAH, null = nullified (no-op'd or "
              "deleted)\n\n");
  std::printf("%-10s | %-23s | %-23s | %-23s | %-23s\n", "", "each/simple",
              "each/full", "all/simple", "all/full");
  std::printf("%-10s | %5s %5s %5s | %5s %5s %5s | %5s %5s %5s | "
              "%5s %5s %5s\n",
              "program", "conv", "null", "both", "conv", "null", "both",
              "conv", "null", "both", "conv", "null", "both");
  rule(118);

  double MeanConv[4] = {}, MeanNull[4] = {};
  for (const BuiltEntry &E : Suite) {
    std::printf("%-10s |", E.Name.c_str());
    unsigned Col = 0;
    for (wl::CompileMode Mode :
         {wl::CompileMode::Each, wl::CompileMode::All}) {
      for (om::OmLevel Level : {om::OmLevel::Simple, om::OmLevel::Full}) {
        om::OmStats S = omStats(E.Built, Mode, Level);
        double Total = static_cast<double>(S.AddressLoadsTotal);
        double Conv = static_cast<double>(S.AddressLoadsConverted);
        double Null = static_cast<double>(S.AddressLoadsNullified);
        std::printf(" %s %s %s |", pct(Conv, Total).c_str(),
                    pct(Null, Total).c_str(),
                    pct(Conv + Null, Total).c_str());
        MeanConv[Col] += 100.0 * Conv / Total;
        MeanNull[Col] += 100.0 * Null / Total;
        ++Col;
      }
    }
    std::printf("\n");
  }
  rule(118);
  std::printf("%-10s |", "mean");
  for (unsigned Col = 0; Col < 4; ++Col) {
    double C = MeanConv[Col] / Suite.size();
    double N = MeanNull[Col] / Suite.size();
    std::printf(" %5.1f %5.1f %5.1f |", C, N, C + N);
  }
  std::printf("\n\nPaper's shape: OM-simple converts essentially all "
              "in-range loads and nullifies\nabout as many (about half of "
              "all address loads eliminated); OM-full eliminates\nnearly "
              "all of them, with slightly fewer conversions (GAT reduction "
              "lets it\nnullify references OM-simple could only convert).\n");
  return 0;
}

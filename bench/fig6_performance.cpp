//===- bench/fig6_performance.cpp - Reproduces Figure 6 -------------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 6: "Improvement in performance relative to program without
/// link-time optimization". Every variant executes on the dual-issue
/// timing simulator; the improvement is in simulated cycles. The paper
/// reports means, medians, and counts of programs above 1%% / 5%% -- all
/// reproduced below.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <algorithm>

using namespace om64;
using namespace om64::bench;

namespace {

struct Summary {
  std::vector<double> Values;
  void add(double V) { Values.push_back(V); }
  double mean() const {
    double S = 0;
    for (double V : Values)
      S += V;
    return Values.empty() ? 0 : S / static_cast<double>(Values.size());
  }
  double median() {
    if (Values.empty())
      return 0;
    std::sort(Values.begin(), Values.end());
    size_t N = Values.size();
    return N % 2 ? Values[N / 2]
                 : 0.5 * (Values[N / 2 - 1] + Values[N / 2]);
  }
  unsigned countAbove(double T) const {
    unsigned N = 0;
    for (double V : Values)
      N += V > T;
    return N;
  }
};

} // namespace

int main() {
  std::vector<BuiltEntry> Suite = buildAllWorkloads();

  std::printf("Figure 6: dynamic improvement over no link-time "
              "optimization (%% of cycles)\n");
  std::printf("%-10s | %-13s | %-13s\n", "", "compile-each", "compile-all");
  std::printf("%-10s | %5s %6s | %5s %6s\n", "program", "simp", "full",
              "simp", "full");
  rule(46);

  Summary Sums[4];
  for (const BuiltEntry &E : Suite) {
    std::printf("%-10s |", E.Name.c_str());
    unsigned Col = 0;
    for (wl::CompileMode Mode :
         {wl::CompileMode::Each, wl::CompileMode::All}) {
      uint64_t Base = baselineCycles(E.Built, Mode);
      for (om::OmLevel Level : {om::OmLevel::Simple, om::OmLevel::Full}) {
        double Impr =
            improvementPct(Base, omCycles(E.Built, Mode, Level));
        std::printf(" %5.2f", Impr);
        Sums[Col++].add(Impr);
      }
      std::printf(" |");
    }
    std::printf("\n");
  }
  rule(46);
  std::printf("%-10s |", "mean");
  for (unsigned Col = 0; Col < 4; ++Col) {
    std::printf(" %5.2f", Sums[Col].mean());
    if (Col == 1)
      std::printf(" |");
  }
  std::printf(" |\n%-10s |", "median");
  for (unsigned Col = 0; Col < 4; ++Col) {
    std::printf(" %5.2f", Sums[Col].median());
    if (Col == 1)
      std::printf(" |");
  }
  std::printf(" |\n\n");

  std::printf("programs improved by more than 1%%:  each/simple %u, "
              "each/full %u, all/simple %u, all/full %u (of %zu)\n",
              Sums[0].countAbove(1.0), Sums[1].countAbove(1.0),
              Sums[2].countAbove(1.0), Sums[3].countAbove(1.0),
              Suite.size());
  std::printf("programs improved by more than 5%%:  each/simple %u, "
              "each/full %u, all/simple %u, all/full %u\n\n",
              Sums[0].countAbove(5.0), Sums[1].countAbove(5.0),
              Sums[2].countAbove(5.0), Sums[3].countAbove(5.0));

  std::printf("Paper's shape: OM-full beats OM-simple everywhere; the "
              "compile-all numbers\nreach about 90%% of the compile-each "
              "improvement (paper: 1.5%%/3.8%% vs\n1.35%%/3.4%%). Absolute "
              "magnitudes differ from the paper's because the baseline\n"
              "code quality and memory system are synthetic -- see "
              "EXPERIMENTS.md.\n");
  return 0;
}

//===- bench/ablation_scheduling.cpp - Section 5.2's scheduling study -----===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 5.2's ablations around OM-full:
///
///   * link-time rescheduling ("to our surprise, scheduling made only a
///     small difference, raising the average improvement from 3.8%% to
///     4.2%%"),
///   * loop-target quadword alignment alone (which hurt ear: "when we
///     scheduled it without alignment the performance was improved"),
///   * the data-sorting heuristic (an implementation design choice
///     DESIGN.md calls out: how much of OM's win comes from placing
///     small data next to the GAT).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace om64;
using namespace om64::bench;

namespace {

uint64_t cyclesWith(const wl::BuiltWorkload &W, bool Resched, bool Align,
                    bool Sort) {
  om::OmOptions Opts;
  Opts.Level = om::OmLevel::Full;
  Opts.Reschedule = Resched;
  Opts.AlignLoopTargets = Align;
  Opts.SortDataBySize = Sort;
  Result<om::OmResult> R = wl::linkWithOm(W, wl::CompileMode::Each, Opts);
  if (!R)
    fail(W.Name + ": " + R.message());
  Result<sim::SimResult> S = sim::run(R->Image);
  if (!S)
    fail(W.Name + ": " + S.message());
  return S->Cycles;
}

} // namespace

int main() {
  std::vector<BuiltEntry> Suite = buildAllWorkloads();

  std::printf("Scheduling & layout ablations on OM-full "
              "(improvement over no-link-time-opt, %%; compile-each)\n");
  std::printf("%-10s %8s %8s %8s %8s %8s\n", "program", "full",
              "+sched", "+align", "+both", "-sort");
  rule(56);

  double Mean[5] = {};
  for (const BuiltEntry &E : Suite) {
    uint64_t Base = baselineCycles(E.Built, wl::CompileMode::Each);
    double Vals[5] = {
        improvementPct(Base, cyclesWith(E.Built, false, false, true)),
        improvementPct(Base, cyclesWith(E.Built, true, false, true)),
        improvementPct(Base, cyclesWith(E.Built, false, true, true)),
        improvementPct(Base, cyclesWith(E.Built, true, true, true)),
        improvementPct(Base, cyclesWith(E.Built, false, false, false)),
    };
    std::printf("%-10s %8.2f %8.2f %8.2f %8.2f %8.2f\n", E.Name.c_str(),
                Vals[0], Vals[1], Vals[2], Vals[3], Vals[4]);
    for (int C = 0; C < 5; ++C)
      Mean[C] += Vals[C];
  }
  rule(56);
  std::printf("%-10s %8.2f %8.2f %8.2f %8.2f %8.2f\n", "mean",
              Mean[0] / Suite.size(), Mean[1] / Suite.size(),
              Mean[2] / Suite.size(), Mean[3] / Suite.size(),
              Mean[4] / Suite.size());
  std::printf("\ncolumns: full = OM-full alone; +sched = with link-time "
              "rescheduling;\n+align = with loop-target alignment only; "
              "+both = the paper's 'full w/sched';\n-sort = OM-full "
              "without the small-data-first layout heuristic.\n");
  std::printf("\nPaper's shape: rescheduling adds only a few tenths of a "
              "percentage point on\naverage and alignment can hurt "
              "individual programs (ear, nasa7).\n");
  return 0;
}

//===- bench/om_link_throughput.cpp - Parallel link throughput ------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures OM full-translation wall time across all 19 workloads for
/// -j1 versus -jN and reports the speedup, the per-stage second totals,
/// and (optionally) a JSON record suitable for docs/BENCH_*.json. The
/// byte-identity of the -j1 and -jN images is asserted on every link, so
/// the bench doubles as a determinism smoke test.
///
/// Usage: om_link_throughput [--reps R] [--jobs N] [--json FILE]
///
///   --reps R   best-of-R timing for each job count (default 3)
///   --jobs N   parallel job count to compare against -j1
///              (default: ThreadPool::defaultConcurrency())
///   --json F   write a record in the uniform bench schema to F
///              ("-" for stdout); see bench/BenchUtil.h and the
///              committed baseline docs/BENCH_om_link_throughput.json
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/ThreadPool.h"

#include <chrono>
#include <cstring>

using namespace om64;
using namespace om64::bench;

namespace {

/// One full pass: links every workload at OM-full with rescheduling and
/// returns total wall seconds plus the summed per-stage seconds. Images
/// are serialized and compared against \p Reference when provided.
struct PassResult {
  double WallSeconds = 0;
  om::OmStageSeconds Stages;
  std::vector<std::vector<uint8_t>> Images;
};

PassResult linkAll(const std::vector<BuiltEntry> &Workloads, unsigned Jobs,
                   const std::vector<std::vector<uint8_t>> *Reference) {
  PassResult P;
  om::OmOptions Opts;
  Opts.Level = om::OmLevel::Full;
  Opts.Reschedule = true;
  Opts.AlignLoopTargets = true;
  Opts.Jobs = Jobs;
  auto Start = std::chrono::steady_clock::now();
  for (size_t I = 0; I < Workloads.size(); ++I) {
    Result<om::OmResult> R =
        wl::linkWithOm(Workloads[I].Built, wl::CompileMode::Each, Opts);
    if (!R)
      fail(Workloads[I].Name + ": " + R.message());
    P.Stages.Lift += R->Stats.Seconds.Lift;
    P.Stages.CallTransforms += R->Stats.Seconds.CallTransforms;
    P.Stages.AddressLoads += R->Stats.Seconds.AddressLoads;
    P.Stages.CodeMotion += R->Stats.Seconds.CodeMotion;
    P.Stages.Assemble += R->Stats.Seconds.Assemble;
    P.Stages.Verify += R->Stats.Seconds.Verify;
    P.Stages.Total += R->Stats.Seconds.Total;
    P.Images.push_back(R->Image.serialize());
    if (Reference && (*Reference)[I] != P.Images.back())
      fail(Workloads[I].Name + ": -j" + std::to_string(Jobs) +
           " image differs from the -j1 image");
  }
  P.WallSeconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - Start)
                      .count();
  return P;
}

void printStages(const char *Label, const om::OmStageSeconds &S) {
  std::printf("  %-6s lift %.3fs  transforms %.3fs  addr %.3fs  motion "
              "%.3fs  assemble %.3fs  verify %.3fs  total %.3fs\n",
              Label, S.Lift, S.CallTransforms, S.AddressLoads, S.CodeMotion,
              S.Assemble, S.Verify, S.Total);
}

} // namespace

int main(int argc, char **argv) {
  BenchArgs Args = parseBenchArgs(argc, argv);
  unsigned Reps = Args.Reps;
  unsigned Jobs = Args.Jobs ? Args.Jobs : ThreadPool::defaultConcurrency();
  if (Jobs < 2)
    Jobs = 2; // comparing -j1 to -j1 would be meaningless

  std::vector<BuiltEntry> Workloads = buildAllWorkloads();
  std::printf("om_link_throughput: %zu workloads, OM-full+sched, "
              "best of %u rep(s), host concurrency %u\n",
              Workloads.size(), Reps, ThreadPool::defaultConcurrency());

  PassResult BestSerial, BestParallel;
  std::vector<std::vector<uint8_t>> Reference;
  for (unsigned R = 0; R < Reps; ++R) {
    PassResult Serial = linkAll(Workloads, 1, nullptr);
    if (Reference.empty())
      Reference = Serial.Images;
    PassResult Par = linkAll(Workloads, Jobs, &Reference);
    if (R == 0 || Serial.WallSeconds < BestSerial.WallSeconds)
      BestSerial = std::move(Serial);
    if (R == 0 || Par.WallSeconds < BestParallel.WallSeconds)
      BestParallel = std::move(Par);
  }

  double Speedup = BestParallel.WallSeconds > 0
                       ? BestSerial.WallSeconds / BestParallel.WallSeconds
                       : 0;
  std::printf("  -j1    %.3fs wall\n", BestSerial.WallSeconds);
  std::printf("  -j%-2u   %.3fs wall   (speedup %.2fx)\n", Jobs,
              BestParallel.WallSeconds, Speedup);
  printStages("-j1", BestSerial.Stages);
  printStages(formatString("-j%u", Jobs).c_str(), BestParallel.Stages);
  std::printf("  images: byte-identical across job counts on every "
              "workload\n");

  if (!Args.JsonPath.empty()) {
    // Wall-clock link time on a shared CI runner is the noisiest number
    // this suite produces; the wide tolerances keep the gate sensitive
    // only to multi-x blowups (e.g. an accidental O(n^2) stage).
    std::vector<JsonEntry> Entries;
    Entries.push_back({"aggregate", "j1_wall_seconds",
                       BestSerial.WallSeconds, "seconds",
                       /*HigherIsBetter=*/false, /*TolerancePct=*/300});
    Entries.push_back({"aggregate", "jn_wall_seconds",
                       BestParallel.WallSeconds, "seconds",
                       /*HigherIsBetter=*/false, /*TolerancePct=*/300});
    Entries.push_back({"aggregate", "speedup", Speedup, "ratio",
                       /*HigherIsBetter=*/true, /*TolerancePct=*/90});
    writeBenchJson("om_link_throughput", Entries, Args.JsonPath);
  }
  return 0;
}

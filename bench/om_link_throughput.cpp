//===- bench/om_link_throughput.cpp - Parallel link throughput ------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures OM full-translation wall time for -j1 versus -jN on two very
/// different input scales:
///
///   * tiny: the 19 SPEC-shaped seed workloads (~15ms of total link).
///     These sit far below the serial-fallback cutoff, so -jN runs the
///     same serial code as -j1 and must never lose to it. The bench
///     asserts that (the historical regression: thread wake-up overhead
///     made -j4 0.82x of -j1 on exactly these inputs).
///   * mega: one generated million-instruction, thousand-procedure,
///     64-module program (src/megagen). This is the scale the sharded
///     parallel pipeline exists for; the speedup is the headline number.
///
/// The -j1/-jN byte-identity of every produced image is asserted on every
/// link, so the bench doubles as a determinism smoke test at both scales.
///
/// Usage: om_link_throughput [--reps R] [--jobs N] [--json FILE]
///
///   --reps R   best-of-R timing for each job count (default 3)
///   --jobs N   parallel job count to compare against -j1
///              (default: ThreadPool::defaultConcurrency())
///   --json F   write a record in the uniform bench schema to F
///              ("-" for stdout); see bench/BenchUtil.h and the
///              committed baseline docs/BENCH_om_link_throughput.json
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "megagen/MegaGen.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>
#include <cstring>

using namespace om64;
using namespace om64::bench;

namespace {

/// One full pass over the tiny workloads: links every workload at OM-full
/// with rescheduling and returns total wall seconds plus the summed
/// per-stage seconds. Images are compared against \p Reference when given.
struct PassResult {
  double WallSeconds = 0;
  om::OmStageSeconds Stages;
  std::vector<std::vector<uint8_t>> Images;
};

PassResult linkAllTiny(const std::vector<BuiltEntry> &Workloads,
                       unsigned Jobs,
                       const std::vector<std::vector<uint8_t>> *Reference) {
  PassResult P;
  om::OmOptions Opts;
  Opts.Level = om::OmLevel::Full;
  Opts.Reschedule = true;
  Opts.AlignLoopTargets = true;
  Opts.Jobs = Jobs;
  // The serial fallback stays at its default here on purpose: these
  // inputs are the ones it exists for.
  auto Start = std::chrono::steady_clock::now();
  for (size_t I = 0; I < Workloads.size(); ++I) {
    Result<om::OmResult> R =
        wl::linkWithOm(Workloads[I].Built, wl::CompileMode::Each, Opts);
    if (!R)
      fail(Workloads[I].Name + ": " + R.message());
    P.Stages.Lift += R->Stats.Seconds.Lift;
    P.Stages.CallTransforms += R->Stats.Seconds.CallTransforms;
    P.Stages.AddressLoads += R->Stats.Seconds.AddressLoads;
    P.Stages.CodeMotion += R->Stats.Seconds.CodeMotion;
    P.Stages.Assemble += R->Stats.Seconds.Assemble;
    P.Stages.Verify += R->Stats.Seconds.Verify;
    P.Stages.Total += R->Stats.Seconds.Total;
    P.Images.push_back(R->Image.serialize());
    if (Reference && (*Reference)[I] != P.Images.back())
      fail(Workloads[I].Name + ": -j" + std::to_string(Jobs) +
           " image differs from the -j1 image");
  }
  P.WallSeconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - Start)
                      .count();
  return P;
}

/// One mega link; returns wall seconds and leaves the image bytes in
/// \p ImageOut for the byte-identity check.
double linkMega(const std::vector<obj::ObjectFile> &Objs, unsigned Jobs,
                std::vector<uint8_t> &ImageOut) {
  om::OmOptions Opts;
  Opts.Level = om::OmLevel::Full;
  Opts.Reschedule = true;
  Opts.AlignLoopTargets = true;
  Opts.Jobs = Jobs;
  auto Start = std::chrono::steady_clock::now();
  Result<om::OmResult> R = om::optimize(Objs, Opts);
  double Wall = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
  if (!R)
    fail("mega: " + R.message());
  ImageOut = R->Image.serialize();
  return Wall;
}

void printStages(const char *Label, const om::OmStageSeconds &S) {
  std::printf("  %-6s lift %.3fs  transforms %.3fs  addr %.3fs  motion "
              "%.3fs  assemble %.3fs  verify %.3fs  total %.3fs\n",
              Label, S.Lift, S.CallTransforms, S.AddressLoads, S.CodeMotion,
              S.Assemble, S.Verify, S.Total);
}

} // namespace

int main(int argc, char **argv) {
  BenchArgs Args = parseBenchArgs(argc, argv);
  unsigned Reps = Args.Reps;
  unsigned Jobs = Args.Jobs ? Args.Jobs : ThreadPool::defaultConcurrency();
  if (Jobs < 2)
    Jobs = 2; // comparing -j1 to -j1 would be meaningless

  // --- Tiny scale: the 19 seed workloads. -----------------------------
  std::vector<BuiltEntry> Workloads = buildAllWorkloads();
  std::printf("om_link_throughput: %zu tiny workloads, OM-full+sched, "
              "host concurrency %u\n",
              Workloads.size(), ThreadPool::defaultConcurrency());

  // A tiny pass is ~20ms, so extra reps are nearly free — and needed:
  // single-rep ratios of two ~17ms timings swing +/-15% on a loaded
  // host, which would make the no-loss gate below flaky.
  unsigned TinyReps = std::max(Reps, 7u);
  PassResult BestSerial, BestParallel;
  std::vector<std::vector<uint8_t>> Reference;
  for (unsigned R = 0; R < TinyReps; ++R) {
    PassResult Serial = linkAllTiny(Workloads, 1, nullptr);
    if (Reference.empty())
      Reference = Serial.Images;
    PassResult Par = linkAllTiny(Workloads, Jobs, &Reference);
    if (R == 0 || Serial.WallSeconds < BestSerial.WallSeconds)
      BestSerial = std::move(Serial);
    if (R == 0 || Par.WallSeconds < BestParallel.WallSeconds)
      BestParallel = std::move(Par);
  }
  double TinySpeedup =
      BestParallel.WallSeconds > 0
          ? BestSerial.WallSeconds / BestParallel.WallSeconds
          : 0;
  std::printf("  -j1    %.3fs wall\n", BestSerial.WallSeconds);
  std::printf("  -j%-2u   %.3fs wall   (speedup %.2fx)\n", Jobs,
              BestParallel.WallSeconds, TinySpeedup);
  printStages("-j1", BestSerial.Stages);
  printStages(formatString("-j%u", Jobs).c_str(), BestParallel.Stages);
  std::printf("  images: byte-identical across job counts on every "
              "workload\n");
  // The no-loss guarantee the serial fallback provides. 0.85 leaves
  // room for best-of-R timing noise on loaded hosts while still catching
  // the historical 0.82x regression class.
  if (TinySpeedup < 0.85)
    fail(formatString("-j%u is %.2fx of -j1 on the tiny workloads; the "
                      "serial fallback must keep this at ~1.0x",
                      Jobs, TinySpeedup));

  // --- Mega scale: one million-instruction generated program. ---------
  megagen::MegaSpec Spec;
  Spec.Seed = 1;
  Spec.Shape = megagen::CallShape::Mixed;
  Spec.Modules = 64;
  Spec.ProcsPerModule = 16;
  Spec.TargetInstructions = 1050000;
  megagen::MegaProgram MP = megagen::generate(Spec);
  if (MP.Summary.TotalInstructions < 1000000)
    fail("mega workload came out under a million instructions");
  std::printf("om_link_throughput: mega workload (%s): %llu instructions, "
              "%llu procedures, %u modules\n",
              megagen::shapeName(Spec.Shape),
              (unsigned long long)MP.Summary.TotalInstructions,
              (unsigned long long)MP.Summary.TotalProcedures, Spec.Modules);

  double MegaSerial = 0, MegaParallel = 0;
  std::vector<uint8_t> MegaRef, MegaImg;
  for (unsigned R = 0; R < Reps; ++R) {
    double S = linkMega(MP.Objects, 1, MegaImg);
    if (MegaRef.empty())
      MegaRef = std::move(MegaImg);
    double P = linkMega(MP.Objects, Jobs, MegaImg);
    if (MegaImg != MegaRef)
      fail("mega: -j" + std::to_string(Jobs) +
           " image differs from the -j1 image");
    if (R == 0 || S < MegaSerial)
      MegaSerial = S;
    if (R == 0 || P < MegaParallel)
      MegaParallel = P;
  }
  double MegaSpeedup = MegaParallel > 0 ? MegaSerial / MegaParallel : 0;
  std::printf("  -j1    %.3fs wall\n", MegaSerial);
  std::printf("  -j%-2u   %.3fs wall   (speedup %.2fx)\n", Jobs,
              MegaParallel, MegaSpeedup);
  std::printf("  images: byte-identical across job counts at a million "
              "instructions\n");

  if (!Args.JsonPath.empty()) {
    // Wall-clock link time on a shared CI runner is the noisiest number
    // this suite produces; the wide tolerances keep the gate sensitive
    // only to multi-x blowups (e.g. an accidental O(n^2) stage). The
    // mega speedup additionally depends on the runner's core count, so
    // its band is the widest.
    std::vector<JsonEntry> Entries;
    Entries.push_back({"tiny", "j1_wall_seconds", BestSerial.WallSeconds,
                       "seconds", /*HigherIsBetter=*/false,
                       /*TolerancePct=*/300});
    Entries.push_back({"tiny", "jn_wall_seconds", BestParallel.WallSeconds,
                       "seconds", /*HigherIsBetter=*/false,
                       /*TolerancePct=*/300});
    Entries.push_back({"tiny", "speedup", TinySpeedup, "ratio",
                       /*HigherIsBetter=*/true, /*TolerancePct=*/50});
    Entries.push_back({"mega", "instructions",
                       static_cast<double>(MP.Summary.TotalInstructions),
                       "count", /*HigherIsBetter=*/true,
                       /*TolerancePct=*/5});
    Entries.push_back({"mega", "j1_wall_seconds", MegaSerial, "seconds",
                       /*HigherIsBetter=*/false, /*TolerancePct=*/300});
    Entries.push_back({"mega", "jn_wall_seconds", MegaParallel, "seconds",
                       /*HigherIsBetter=*/false, /*TolerancePct=*/300});
    Entries.push_back({"mega", "speedup", MegaSpeedup, "ratio",
                       /*HigherIsBetter=*/true, /*TolerancePct=*/90});
    writeBenchJson("om_link_throughput", Entries, Args.JsonPath);
  }
  return 0;
}

//===- bench/fig5_instructions_removed.cpp - Reproduces Figure 5 ----------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 5: "Static fraction of instructions nullified". OM-simple
/// nullifies (replaces with no-ops, around 6%% in the paper); OM-full
/// deletes (around 11%% on average).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace om64;
using namespace om64::bench;

int main() {
  std::vector<BuiltEntry> Suite = buildAllWorkloads();

  std::printf("Figure 5: static fraction of instructions "
              "nullified/deleted (%%)\n");
  std::printf("%-10s | %-13s | %-13s\n", "", "compile-each", "compile-all");
  std::printf("%-10s | %5s %6s | %5s %6s\n", "program", "simp", "full",
              "simp", "full");
  rule(46);

  double Mean[4] = {};
  for (const BuiltEntry &E : Suite) {
    std::printf("%-10s |", E.Name.c_str());
    unsigned Col = 0;
    for (wl::CompileMode Mode :
         {wl::CompileMode::Each, wl::CompileMode::All}) {
      om::OmStats Simple = omStats(E.Built, Mode, om::OmLevel::Simple);
      om::OmStats Full = omStats(E.Built, Mode, om::OmLevel::Full);
      double SimplePct = 100.0 *
                         static_cast<double>(Simple.InstructionsNullified) /
                         static_cast<double>(Simple.InstructionsTotal);
      double FullPct = 100.0 *
                       static_cast<double>(Full.InstructionsDeleted) /
                       static_cast<double>(Full.InstructionsTotal);
      std::printf(" %5.1f %6.1f |", SimplePct, FullPct);
      Mean[Col++] += SimplePct;
      Mean[Col++] += FullPct;
    }
    std::printf("\n");
  }
  rule(46);
  std::printf("%-10s | %5.1f %6.1f | %5.1f %6.1f |\n", "mean",
              Mean[0] / Suite.size(), Mean[1] / Suite.size(),
              Mean[2] / Suite.size(), Mean[3] / Suite.size());
  std::printf("\nPaper's shape: OM-simple nullifies around 6%% of all "
              "instructions; OM-full\ndeletes around 11%%, and compile-all "
              "improves nearly as much as compile-each\n(interprocedural "
              "compilation cannot reach library code or variable "
              "accesses).\n");
  return 0;
}

//===- bench/gat_reduction.cpp - Section 5.1's GAT-size reduction ---------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 5.1: "OM-full reduced the size of the GAT by an entire order
/// of magnitude, reducing it to between 3%% and 15%% of its original
/// size. It was slightly more effective on compile-each versions than on
/// compile-all versions, because compile-all does a little GAT-reduction
/// of its own before OM gets a chance."
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace om64;
using namespace om64::bench;

int main() {
  std::vector<BuiltEntry> Suite = buildAllWorkloads();

  std::printf("GAT size before and after OM-full (bytes; %% of original)\n");
  std::printf("%-10s | %-24s | %-24s\n", "", "compile-each", "compile-all");
  std::printf("%-10s | %7s %7s %6s | %7s %7s %6s\n", "program", "before",
              "after", "%", "before", "after", "%");
  rule(66);

  double MeanPct[2] = {};
  for (const BuiltEntry &E : Suite) {
    std::printf("%-10s |", E.Name.c_str());
    unsigned Col = 0;
    for (wl::CompileMode Mode :
         {wl::CompileMode::Each, wl::CompileMode::All}) {
      om::OmStats S = omStats(E.Built, Mode, om::OmLevel::Full);
      double Pct = 100.0 * static_cast<double>(S.GatBytesAfter) /
                   static_cast<double>(S.GatBytesBefore);
      std::printf(" %7llu %7llu %5.1f%% |",
                  static_cast<unsigned long long>(S.GatBytesBefore),
                  static_cast<unsigned long long>(S.GatBytesAfter), Pct);
      MeanPct[Col++] += Pct;
    }
    std::printf("\n");
  }
  rule(66);
  std::printf("%-10s | %21s %5.1f%% | %21s %5.1f%% |\n", "mean", "",
              MeanPct[0] / Suite.size(), "", MeanPct[1] / Suite.size());
  std::printf("\nPaper's claim: GAT reduced to 3-15%% of its original "
              "size, slightly better on\ncompile-each than compile-all.\n");
  return 0;
}

//===- bench/fig7_build_times.cpp - Reproduces Figure 7 (the table) -------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 7: "Build times in seconds for ld from objects, compile from
/// sources with maximum optimization, and OM from objects" at each OM
/// level. Wall-clock medians of several repetitions. The absolute values
/// are host-dependent; the paper's point is the ordering:
///
///   standard link < OM no-opt < OM-simple < OM-full << OM-full+sched
///   and OM-full is far cheaper than an interprocedural rebuild.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <algorithm>
#include <chrono>

using namespace om64;
using namespace om64::bench;

namespace {

/// Median wall-clock milliseconds of \p Fn over \p Reps runs.
template <typename FnT> double timeMs(FnT Fn, unsigned Reps = 3) {
  std::vector<double> Times;
  for (unsigned R = 0; R < Reps; ++R) {
    auto Start = std::chrono::steady_clock::now();
    Fn();
    auto End = std::chrono::steady_clock::now();
    Times.push_back(
        std::chrono::duration<double, std::milli>(End - Start).count());
  }
  std::sort(Times.begin(), Times.end());
  return Times[Times.size() / 2];
}

} // namespace

int main() {
  std::printf("Figure 7: build times in milliseconds (medians of 3 runs)\n");
  std::printf("%-10s %9s %9s | %9s %9s %9s %9s\n", "", "standard",
              "interproc", "OM", "OM", "OM", "OM full");
  std::printf("%-10s %9s %9s | %9s %9s %9s %9s\n", "program", "link",
              "build", "no opt", "simple", "full", "w/sched");
  rule(74);

  for (const std::string &Name : wl::workloadNames()) {
    Result<wl::BuiltWorkload> W = wl::buildWorkload(Name);
    if (!W)
      fail(Name + ": " + W.message());
    std::vector<obj::ObjectFile> EachSet =
        W->linkSet(wl::CompileMode::Each);

    double LinkMs = timeMs([&] {
      Result<obj::Image> Img = lnk::link(EachSet);
      if (!Img)
        fail(Img.message());
    });

    // "Compile from source with maximum optimization": parse + check +
    // interprocedural compile of the user program + a standard link
    // (library objects are reused, as the paper's -O4 builds did).
    double InterprocMs = timeMs([&] {
      Result<wl::ParsedWorkload> PW = wl::parseWorkload(Name);
      if (!PW)
        fail(PW.message());
      cg::CompileOptions Opts;
      Opts.InterUnit = true;
      Result<obj::ObjectFile> Unit =
          cg::compileUnit(PW->AST, PW->UserModules, Opts);
      if (!Unit)
        fail(Unit.message());
      std::vector<obj::ObjectFile> Objs;
      Objs.push_back(Unit.take());
      for (const obj::ObjectFile &O : W->Library)
        Objs.push_back(O);
      Result<obj::Image> Img = lnk::link(Objs);
      if (!Img)
        fail(Img.message());
    });

    double OmMs[4];
    struct {
      om::OmLevel Level;
      bool Sched;
    } Configs[4] = {{om::OmLevel::None, false},
                    {om::OmLevel::Simple, false},
                    {om::OmLevel::Full, false},
                    {om::OmLevel::Full, true}};
    for (int C = 0; C < 4; ++C) {
      OmMs[C] = timeMs([&] {
        om::OmOptions Opts;
        Opts.Level = Configs[C].Level;
        Opts.Reschedule = Configs[C].Sched;
        Opts.AlignLoopTargets = Configs[C].Sched;
        Result<om::OmResult> R = om::optimize(EachSet, Opts);
        if (!R)
          fail(R.message());
      });
    }

    std::printf("%-10s %9.2f %9.2f | %9.2f %9.2f %9.2f %9.2f\n",
                Name.c_str(), LinkMs, InterprocMs, OmMs[0], OmMs[1],
                OmMs[2], OmMs[3]);
  }
  rule(74);
  std::printf("\nPaper's shape: OM's symbolic translation costs a small "
              "constant factor over a\nstandard link; even OM-full handles "
              "any program quickly; link-time scheduling\nis the expensive "
              "step (superlinear in basic-block size -- watch fpppp and\n"
              "doduc); a full interprocedural rebuild costs more than an "
              "optimizing link.\n");
  return 0;
}

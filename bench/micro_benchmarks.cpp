//===- bench/micro_benchmarks.cpp - google-benchmark microbenchmarks ------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Microbenchmarks of the substrate itself (google-benchmark): simulator
/// throughput, the list scheduler, OM's full pipeline, the traditional
/// linker, and instruction encode/decode. These are not paper figures;
/// they size the infrastructure behind Figure 7.
///
//===----------------------------------------------------------------------===//

#include "isa/Inst.h"
#include "linker/Linker.h"
#include "om/Om.h"
#include "sched/ListScheduler.h"
#include "sim/Simulator.h"
#include "support/Random.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

using namespace om64;

namespace {

const wl::BuiltWorkload &compressWorkload() {
  static wl::BuiltWorkload W = [] {
    Result<wl::BuiltWorkload> R = wl::buildWorkload("compress");
    if (!R)
      std::abort();
    return R.take();
  }();
  return W;
}

void BM_EncodeDecode(benchmark::State &State) {
  DetRandom Rng(42);
  std::vector<uint32_t> Words;
  for (int I = 0; I < 1024; ++I)
    Words.push_back(isa::encode(isa::makeMem(
        isa::Opcode::Ldq, static_cast<uint8_t>(Rng.nextBelow(31)),
        static_cast<int32_t>(Rng.nextInRange(-32768, 32767)),
        static_cast<uint8_t>(Rng.nextBelow(31)))));
  for (auto _ : State) {
    uint64_t Sum = 0;
    for (uint32_t W : Words)
      if (std::optional<isa::Inst> I = isa::decode(W))
        Sum += I->Disp;
    benchmark::DoNotOptimize(Sum);
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Words.size()));
}
BENCHMARK(BM_EncodeDecode);

void BM_ListScheduler(benchmark::State &State) {
  DetRandom Rng(7);
  std::vector<isa::Inst> Region;
  for (int64_t I = 0; I < State.range(0); ++I) {
    uint8_t A = static_cast<uint8_t>(Rng.nextBelow(8) + isa::T0);
    uint8_t B = static_cast<uint8_t>(Rng.nextBelow(8) + isa::T0);
    uint8_t C = static_cast<uint8_t>(Rng.nextBelow(8) + isa::T0);
    Region.push_back(isa::makeOp(isa::Opcode::Addq, A, B, C));
  }
  for (auto _ : State)
    benchmark::DoNotOptimize(sched::scheduleRegion(Region));
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_ListScheduler)->Range(8, 512)->Complexity();

void BM_StandardLink(benchmark::State &State) {
  const wl::BuiltWorkload &W = compressWorkload();
  std::vector<obj::ObjectFile> Objs = W.linkSet(wl::CompileMode::Each);
  for (auto _ : State) {
    Result<obj::Image> Img = lnk::link(Objs);
    benchmark::DoNotOptimize(Img);
  }
}
BENCHMARK(BM_StandardLink);

void BM_OmFull(benchmark::State &State) {
  const wl::BuiltWorkload &W = compressWorkload();
  std::vector<obj::ObjectFile> Objs = W.linkSet(wl::CompileMode::Each);
  om::OmOptions Opts;
  for (auto _ : State) {
    Result<om::OmResult> R = om::optimize(Objs, Opts);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_OmFull);

void BM_SimulatorTiming(benchmark::State &State) {
  const wl::BuiltWorkload &W = compressWorkload();
  Result<obj::Image> Img = wl::linkBaseline(W, wl::CompileMode::Each);
  if (!Img)
    std::abort();
  uint64_t Insts = 0;
  for (auto _ : State) {
    Result<sim::SimResult> R = sim::run(*Img);
    if (R)
      Insts = R->Instructions;
    benchmark::DoNotOptimize(R);
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Insts));
}
BENCHMARK(BM_SimulatorTiming);

void BM_SimulatorFunctional(benchmark::State &State) {
  const wl::BuiltWorkload &W = compressWorkload();
  Result<obj::Image> Img = wl::linkBaseline(W, wl::CompileMode::Each);
  if (!Img)
    std::abort();
  sim::SimConfig Cfg;
  Cfg.Timing = false;
  uint64_t Insts = 0;
  for (auto _ : State) {
    Result<sim::SimResult> R = sim::run(*Img, Cfg);
    if (R)
      Insts = R->Instructions;
    benchmark::DoNotOptimize(R);
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Insts));
}
BENCHMARK(BM_SimulatorFunctional);

void BM_CompileWorkload(benchmark::State &State) {
  for (auto _ : State) {
    Result<wl::BuiltWorkload> W = wl::buildWorkload("eqntott");
    benchmark::DoNotOptimize(W);
  }
}
BENCHMARK(BM_CompileWorkload);

} // namespace

BENCHMARK_MAIN();
